#include "src/tpcw/handlers.h"

#include <algorithm>

#include "src/tpcw/templates.h"

namespace tempest::tpcw {

namespace {

using server::Handler;
using server::HandlerResult;
using server::HandlerContext;
using server::TemplateResponse;

// --- db::Value -> tmpl::Value bridging --------------------------------------

tmpl::Value to_tmpl(const db::Value& v) {
  switch (v.type()) {
    case db::Value::Type::kNull: return tmpl::Value();
    case db::Value::Type::kInt: return tmpl::Value(v.as_int());
    case db::Value::Type::kDouble: return tmpl::Value(v.as_double());
    case db::Value::Type::kString: return tmpl::Value(v.as_string());
  }
  return tmpl::Value();
}

tmpl::Dict row_to_dict(const db::ResultSet& rs, std::size_t row) {
  tmpl::Dict dict;
  for (std::size_t c = 0; c < rs.columns.size(); ++c) {
    dict[rs.columns[c]] = to_tmpl(rs.rows[row][c]);
  }
  return dict;
}

tmpl::Value rows_to_list(const db::ResultSet& rs) {
  tmpl::List list;
  list.reserve(rs.rows.size());
  for (std::size_t r = 0; r < rs.rows.size(); ++r) {
    list.push_back(tmpl::Value(row_to_dict(rs, r)));
  }
  return tmpl::Value(std::move(list));
}

db::Connection& conn(HandlerContext& ctx) {
  if (ctx.db == nullptr) {
    throw db::DbError("handler invoked on a thread without a DB connection");
  }
  return *ctx.db;
}

std::int64_t clamp_id(std::int64_t id, std::int64_t max) {
  if (max <= 0) return 1;
  if (id < 1 || id > max) return ((id % max) + max) % max + 1;
  return id;
}

// The request's effective customer. A logged-in session's stored identity
// wins over the c_id query parameter (the anonymous mix's RBE-style hint), so
// an authenticated browser cannot act as another customer by editing the URL.
// Anonymous requests keep the query-parameter behaviour unchanged.
std::int64_t effective_c_id(HandlerContext& ctx, TpcwState& state) {
  if (server::Session* session = ctx.session_if_exists()) {
    const std::int64_t sid = session->get_int("c_id", 0);
    if (sid > 0) return clamp_id(sid, state.scale.customers);
  }
  return clamp_id(ctx.param_int("c_id", 1), state.scale.customers);
}

// --- The 14 handlers ---------------------------------------------------------

HandlerResult home(HandlerContext& ctx, TpcwState& state) {
  const std::int64_t c_id = effective_c_id(ctx, state);
  tmpl::Dict data;
  data["c_id"] = tmpl::Value(c_id);

  auto customer = conn(ctx).execute(
      "SELECT c_fname, c_lname FROM customer WHERE c_id = ?",
      {db::Value(c_id)});
  if (!customer.empty()) {
    data["c_fname"] = to_tmpl(customer.at(0, "c_fname"));
    data["c_lname"] = to_tmpl(customer.at(0, "c_lname"));
  }

  // Five promotional items, one indexed lookup each (all quick).
  tmpl::List promos;
  for (int k = 0; k < 5; ++k) {
    const std::int64_t i_id =
        clamp_id(c_id * 7 + k * 1009, state.scale.items);
    auto item = conn(ctx).execute(
        "SELECT i_id, i_title, i_cost, i_thumbnail FROM item WHERE i_id = ?",
        {db::Value(i_id)});
    if (!item.empty()) promos.push_back(tmpl::Value(row_to_dict(item, 0)));
  }
  data["promotions"] = tmpl::Value(std::move(promos));
  return TemplateResponse{"home.html", std::move(data)};
}

HandlerResult product_detail(HandlerContext& ctx, TpcwState& state) {
  const std::int64_t i_id =
      clamp_id(ctx.param_int("i_id", 1), state.scale.items);
  auto item =
      conn(ctx).execute("SELECT * FROM item WHERE i_id = ?", {db::Value(i_id)});
  // Refine the auto-recorded table-wide item dependency down to this row, so
  // a purchase or admin update of another book leaves this fragment cached.
  ctx.depend("item", std::to_string(i_id));
  tmpl::Dict data;
  data["c_id"] = tmpl::Value(ctx.param_int("c_id", 0));
  if (!item.empty()) {
    data = row_to_dict(item, 0);
    data["c_id"] = tmpl::Value(ctx.param_int("c_id", 0));
    data["savings"] = tmpl::Value(item.at(0, "i_srp").as_double() -
                                  item.at(0, "i_cost").as_double());
    auto author = conn(ctx).execute(
        "SELECT a_fname, a_lname FROM author WHERE a_id = ?",
        {item.at(0, "i_a_id")});
    if (!author.empty()) {
      data["a_fname"] = to_tmpl(author.at(0, "a_fname"));
      data["a_lname"] = to_tmpl(author.at(0, "a_lname"));
    }
  }
  return TemplateResponse{"product_detail.html", std::move(data)};
}

HandlerResult search_request(HandlerContext& ctx, TpcwState&) {
  tmpl::Dict data;
  data["c_id"] = tmpl::Value(ctx.param_int("c_id", 0));
  tmpl::List subjects;
  for (int s = 0; s < kNumSubjects; ++s) {
    subjects.push_back(tmpl::Value(subject_name(s)));
  }
  data["subjects"] = tmpl::Value(std::move(subjects));
  return TemplateResponse{"search_request.html", std::move(data)};
}

HandlerResult execute_search(HandlerContext& ctx, TpcwState&) {
  const std::string type = ctx.param("type", "title");
  const std::string term = ctx.param("term", "river");
  tmpl::Dict data;
  data["c_id"] = tmpl::Value(ctx.param_int("c_id", 0));
  data["term"] = tmpl::Value(term);
  data["search_type"] = tmpl::Value(type);

  // Both forms LIKE-scan an unindexed column — one of the paper's three
  // inherently slow pages.
  db::ResultSet results;
  if (type == "author") {
    results = conn(ctx).execute(
        "SELECT i_id, i_title, a_fname, a_lname FROM author "
        "JOIN item ON i_a_id = a_id WHERE a_lname LIKE ? LIMIT 50",
        {db::Value("%" + term + "%")});
  } else {
    results = conn(ctx).execute(
        "SELECT i_id, i_title, a_fname, a_lname FROM item "
        "JOIN author ON i_a_id = a_id WHERE i_title LIKE ? LIMIT 50",
        {db::Value("%" + term + "%")});
  }
  data["results"] = rows_to_list(results);
  return TemplateResponse{"execute_search.html", std::move(data)};
}

HandlerResult new_products(HandlerContext& ctx, TpcwState&) {
  const std::string subject = ctx.param("subject", "ARTS");
  // Full item scan (i_subject unindexed) + ORDER BY — slow page #2.
  auto books = conn(ctx).execute(
      "SELECT i_id, i_title, i_pub_date, a_fname, a_lname FROM item "
      "JOIN author ON i_a_id = a_id WHERE i_subject = ? "
      "ORDER BY i_pub_date DESC, i_title ASC LIMIT 50",
      {db::Value(subject)});
  tmpl::Dict data;
  data["c_id"] = tmpl::Value(ctx.param_int("c_id", 0));
  data["subject"] = tmpl::Value(subject);
  data["books"] = rows_to_list(books);
  return TemplateResponse{"new_products.html", std::move(data)};
}

HandlerResult best_sellers(HandlerContext& ctx, TpcwState& state) {
  const std::string subject = ctx.param("subject", "ARTS");
  // Aggregates the most recent orders' lines: range predicate over ol_o_id
  // defeats the hash index, so this scans order_line — slow page #3.
  const std::int64_t cutoff =
      state.next_order_id.load(std::memory_order_relaxed) -
      state.scale.best_seller_window;
  auto books = conn(ctx).execute(
      "SELECT i_id, i_title, a_fname, a_lname, SUM(ol_qty) AS total "
      "FROM order_line JOIN item ON ol_i_id = i_id "
      "JOIN author ON i_a_id = a_id "
      "WHERE ol_o_id > ? AND i_subject = ? "
      "GROUP BY i_id, i_title, a_fname, a_lname "
      "ORDER BY total DESC LIMIT 50",
      {db::Value(cutoff), db::Value(subject)});
  tmpl::Dict data;
  data["c_id"] = tmpl::Value(ctx.param_int("c_id", 0));
  data["subject"] = tmpl::Value(subject);
  data["books"] = rows_to_list(books);
  return TemplateResponse{"best_sellers.html", std::move(data)};
}

HandlerResult shopping_cart(HandlerContext& ctx, TpcwState& state) {
  const std::int64_t c_id = effective_c_id(ctx, state);
  const std::int64_t i_id = ctx.param_int("i_id", 0);
  const std::int64_t qty = std::max<std::int64_t>(1, ctx.param_int("qty", 1));

  if (i_id > 0) {
    const std::int64_t item_id = clamp_id(i_id, state.scale.items);
    auto existing = conn(ctx).execute(
        "SELECT scl_id, scl_qty FROM shopping_cart_line "
        "WHERE scl_sc_id = ? AND scl_i_id = ?",
        {db::Value(c_id), db::Value(item_id)});
    if (existing.empty()) {
      const std::int64_t scl_id =
          state.next_cart_line_id.fetch_add(1, std::memory_order_relaxed);
      conn(ctx).execute(
          "INSERT INTO shopping_cart_line (scl_id, scl_sc_id, scl_i_id, "
          "scl_qty) VALUES (?, ?, ?, ?)",
          {db::Value(scl_id), db::Value(c_id), db::Value(item_id),
           db::Value(qty)});
    } else {
      conn(ctx).execute(
          "UPDATE shopping_cart_line SET scl_qty = ? WHERE scl_id = ?",
          {db::Value(existing.at(0, "scl_qty").as_int() + qty),
           existing.at(0, "scl_id")});
    }
  }

  auto lines = conn(ctx).execute(
      "SELECT scl_qty, i_title, i_cost FROM shopping_cart_line "
      "JOIN item ON scl_i_id = i_id WHERE scl_sc_id = ?",
      {db::Value(c_id)});
  double subtotal = 0;
  for (std::size_t r = 0; r < lines.size(); ++r) {
    subtotal += lines.at(r, "i_cost").as_double() *
                static_cast<double>(lines.at(r, "scl_qty").as_int());
  }
  tmpl::Dict data;
  data["c_id"] = tmpl::Value(c_id);
  data["lines"] = rows_to_list(lines);
  data["subtotal"] = tmpl::Value(subtotal);
  return TemplateResponse{"shopping_cart.html", std::move(data)};
}

HandlerResult customer_registration(HandlerContext& ctx, TpcwState& state) {
  const std::int64_t c_id = effective_c_id(ctx, state);
  auto customer = conn(ctx).execute(
      "SELECT c_uname, c_fname, c_lname, c_email FROM customer WHERE c_id = ?",
      {db::Value(c_id)});
  tmpl::Dict data;
  data["c_id"] = tmpl::Value(c_id);
  data["returning"] = tmpl::Value(!customer.empty());
  if (!customer.empty()) {
    data["c_uname"] = to_tmpl(customer.at(0, "c_uname"));
    data["c_fname"] = to_tmpl(customer.at(0, "c_fname"));
    data["c_lname"] = to_tmpl(customer.at(0, "c_lname"));
    data["c_email"] = to_tmpl(customer.at(0, "c_email"));
  }
  return TemplateResponse{"customer_registration.html", std::move(data)};
}

// Cart lines for checkout pages, with item info joined in.
db::ResultSet checkout_lines(HandlerContext& ctx, std::int64_t c_id) {
  return conn(ctx).execute(
      "SELECT scl_i_id, scl_qty, i_title, i_cost, i_stock "
      "FROM shopping_cart_line JOIN item ON scl_i_id = i_id "
      "WHERE scl_sc_id = ?",
      {db::Value(c_id)});
}

HandlerResult buy_request(HandlerContext& ctx, TpcwState& state) {
  const std::int64_t c_id = effective_c_id(ctx, state);
  tmpl::Dict data;
  data["c_id"] = tmpl::Value(c_id);

  auto customer = conn(ctx).execute(
      "SELECT c_fname, c_lname, c_addr_id, c_discount FROM customer "
      "WHERE c_id = ?",
      {db::Value(c_id)});
  if (!customer.empty()) {
    data["c_fname"] = to_tmpl(customer.at(0, "c_fname"));
    data["c_lname"] = to_tmpl(customer.at(0, "c_lname"));
    auto address = conn(ctx).execute(
        "SELECT addr_street1, addr_city, addr_zip, addr_co_id FROM address "
        "WHERE addr_id = ?",
        {customer.at(0, "c_addr_id")});
    if (!address.empty()) {
      data["addr_street1"] = to_tmpl(address.at(0, "addr_street1"));
      data["addr_city"] = to_tmpl(address.at(0, "addr_city"));
      data["addr_zip"] = to_tmpl(address.at(0, "addr_zip"));
      auto country = conn(ctx).execute(
          "SELECT co_name FROM country WHERE co_id = ?",
          {address.at(0, "addr_co_id")});
      if (!country.empty()) data["co_name"] = to_tmpl(country.at(0, "co_name"));
    }
  }

  auto lines = checkout_lines(ctx, c_id);
  double subtotal = 0;
  for (std::size_t r = 0; r < lines.size(); ++r) {
    subtotal += lines.at(r, "i_cost").as_double() *
                static_cast<double>(lines.at(r, "scl_qty").as_int());
  }
  data["lines"] = rows_to_list(lines);
  data["subtotal"] = tmpl::Value(subtotal);
  data["tax"] = tmpl::Value(subtotal * 0.0825);
  data["total"] = tmpl::Value(subtotal * 1.0825);
  return TemplateResponse{"buy_request.html", std::move(data)};
}

HandlerResult buy_confirm(HandlerContext& ctx, TpcwState& state) {
  const std::int64_t c_id = effective_c_id(ctx, state);
  auto lines = checkout_lines(ctx, c_id);

  // TPC-W browsers can reach buy-confirm without having built a cart in this
  // session; buy a default item then (keeps the write path exercised).
  struct Line {
    std::int64_t i_id;
    std::int64_t qty;
    std::int64_t stock;
    std::string title;
    double cost;
  };
  std::vector<Line> to_buy;
  for (std::size_t r = 0; r < lines.size(); ++r) {
    to_buy.push_back({lines.at(r, "scl_i_id").as_int(),
                      lines.at(r, "scl_qty").as_int(),
                      lines.at(r, "i_stock").as_int(),
                      lines.at(r, "i_title").as_string(),
                      lines.at(r, "i_cost").as_double()});
  }
  if (to_buy.empty()) {
    const std::int64_t i_id = clamp_id(c_id * 13 + 7, state.scale.items);
    auto item = conn(ctx).execute(
        "SELECT i_title, i_cost, i_stock FROM item WHERE i_id = ?",
        {db::Value(i_id)});
    if (!item.empty()) {
      to_buy.push_back({i_id, 1, item.at(0, "i_stock").as_int(),
                        item.at(0, "i_title").as_string(),
                        item.at(0, "i_cost").as_double()});
    }
  }

  double subtotal = 0;
  for (const Line& line : to_buy) {
    subtotal += line.cost * static_cast<double>(line.qty);
  }
  const double total = subtotal * 1.0825;

  const std::int64_t o_id =
      state.next_order_id.fetch_add(1, std::memory_order_relaxed);
  conn(ctx).execute(
      "INSERT INTO orders (o_id, o_c_id, o_date, o_sub_total, o_tax, o_total, "
      "o_ship_type, o_ship_date, o_status) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
      {db::Value(o_id), db::Value(c_id), db::Value(20090701),
       db::Value(subtotal), db::Value(subtotal * 0.0825), db::Value(total),
       db::Value("AIR"), db::Value(20090708), db::Value("PENDING")});

  tmpl::List line_dicts;
  for (const Line& line : to_buy) {
    const std::int64_t ol_id =
        state.next_order_line_id.fetch_add(1, std::memory_order_relaxed);
    conn(ctx).execute(
        "INSERT INTO order_line (ol_id, ol_o_id, ol_i_id, ol_qty, "
        "ol_discount, ol_comment) VALUES (?, ?, ?, ?, ?, ?)",
        {db::Value(ol_id), db::Value(o_id), db::Value(line.i_id),
         db::Value(line.qty), db::Value(0.0), db::Value("")});
    // Restock at 21 when the shelf would run empty, like the TPC-W kit.
    const std::int64_t new_stock =
        line.stock - line.qty < 10 ? line.stock - line.qty + 21
                                   : line.stock - line.qty;
    conn(ctx).execute("UPDATE item SET i_stock = ? WHERE i_id = ?",
                      {db::Value(new_stock), db::Value(line.i_id)});
    tmpl::Dict d;
    d["i_title"] = tmpl::Value(line.title);
    d["scl_qty"] = tmpl::Value(line.qty);
    line_dicts.push_back(tmpl::Value(std::move(d)));
  }

  conn(ctx).execute(
      "INSERT INTO cc_xacts (cx_o_id, cx_type, cx_num, cx_name, cx_expire, "
      "cx_auth_id, cx_xact_amt, cx_xact_date, cx_co_id) "
      "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
      {db::Value(o_id), db::Value("VISA"), db::Value("4111111111111111"),
       db::Value("CARD HOLDER"), db::Value(20121231), db::Value("AUTH"),
       db::Value(total), db::Value(20090701), db::Value(1)});

  auto customer = conn(ctx).execute(
      "SELECT c_fname, c_lname FROM customer WHERE c_id = ?",
      {db::Value(c_id)});

  // The purchase changed order_line (best-seller rankings) and item stock
  // (product pages): invalidate by dependency so only fragments and cached
  // pages that actually read those tables — and for item, those rows — drop.
  ctx.invalidate_table("order_line");
  for (const Line& line : to_buy) {
    ctx.invalidate_row("item", std::to_string(line.i_id));
  }

  tmpl::Dict data;
  data["c_id"] = tmpl::Value(c_id);
  data["o_id"] = tmpl::Value(o_id);
  data["total"] = tmpl::Value(total);
  data["lines"] = tmpl::Value(std::move(line_dicts));
  if (!customer.empty()) {
    data["c_fname"] = to_tmpl(customer.at(0, "c_fname"));
    data["c_lname"] = to_tmpl(customer.at(0, "c_lname"));
  }
  return TemplateResponse{"buy_confirm.html", std::move(data)};
}

HandlerResult order_inquiry(HandlerContext& ctx, TpcwState& state) {
  const std::int64_t c_id = effective_c_id(ctx, state);
  auto customer = conn(ctx).execute(
      "SELECT c_uname FROM customer WHERE c_id = ?", {db::Value(c_id)});
  tmpl::Dict data;
  data["c_id"] = tmpl::Value(c_id);
  if (!customer.empty()) data["c_uname"] = to_tmpl(customer.at(0, "c_uname"));
  return TemplateResponse{"order_inquiry.html", std::move(data)};
}

HandlerResult order_display(HandlerContext& ctx, TpcwState& state) {
  const std::int64_t c_id = effective_c_id(ctx, state);
  auto order = conn(ctx).execute(
      "SELECT o_id, o_date, o_status, o_total FROM orders WHERE o_c_id = ? "
      "ORDER BY o_id DESC LIMIT 1",
      {db::Value(c_id)});
  tmpl::Dict data;
  data["c_id"] = tmpl::Value(c_id);
  data["found"] = tmpl::Value(!order.empty());
  if (!order.empty()) {
    data["o_id"] = to_tmpl(order.at(0, "o_id"));
    data["o_date"] = to_tmpl(order.at(0, "o_date"));
    data["o_status"] = to_tmpl(order.at(0, "o_status"));
    data["o_total"] = to_tmpl(order.at(0, "o_total"));
    auto lines = conn(ctx).execute(
        "SELECT ol_qty, i_title FROM order_line JOIN item ON ol_i_id = i_id "
        "WHERE ol_o_id = ?",
        {order.at(0, "o_id")});
    data["lines"] = rows_to_list(lines);
  }
  return TemplateResponse{"order_display.html", std::move(data)};
}

HandlerResult admin_request(HandlerContext& ctx, TpcwState& state) {
  const std::int64_t i_id =
      clamp_id(ctx.param_int("i_id", 1), state.scale.items);
  auto item = conn(ctx).execute(
      "SELECT i_id, i_title, i_image, i_thumbnail, i_cost FROM item "
      "WHERE i_id = ?",
      {db::Value(i_id)});
  tmpl::Dict data = item.empty() ? tmpl::Dict{} : row_to_dict(item, 0);
  data["i_id"] = tmpl::Value(i_id);
  return TemplateResponse{"admin_request.html", std::move(data)};
}

HandlerResult admin_response(HandlerContext& ctx, TpcwState& state) {
  const std::int64_t i_id =
      clamp_id(ctx.param_int("i_id", 1), state.scale.items);
  const std::string image =
      ctx.param("image", "/img/image_" + std::to_string(i_id % 100) + ".gif");
  const std::string thumbnail = ctx.param(
      "thumbnail", "/img/thumb_" + std::to_string(i_id % 100) + ".gif");

  // TPC-W's admin confirm recomputes the item's "related" recommendations
  // from recent order history — a scan-and-aggregate over order_line — and
  // then updates the hot `item` table. That combination is what makes this
  // "the only page to experience a significant slowdown" in the paper: it is
  // inherently lengthy AND serializes on the most-used table's write path.
  const std::int64_t cutoff =
      state.next_order_id.load(std::memory_order_relaxed) - 10000;
  auto related = conn(ctx).execute(
      "SELECT ol_i_id, SUM(ol_qty) AS total FROM order_line "
      "WHERE ol_o_id > ? GROUP BY ol_i_id ORDER BY total DESC LIMIT 5",
      {db::Value(cutoff)});
  const std::int64_t related1 =
      related.empty() ? i_id : related.at(0, "ol_i_id").as_int();

  conn(ctx).execute(
      "UPDATE item SET i_image = ?, i_thumbnail = ?, i_pub_date = ?, "
      "i_related1 = ? WHERE i_id = ?",
      {db::Value(image), db::Value(thumbnail), db::Value(20090704),
       db::Value(related1), db::Value(i_id)});

  // The item update touches images, pub_date and recommendations. One row
  // write fans out through the dependency registry: row-keyed fragments for
  // this book, table-wide fragments (catalog lists), and the URL-cache
  // prefixes subscribed to the item table.
  ctx.invalidate_row("item", std::to_string(i_id));

  auto item = conn(ctx).execute(
      "SELECT i_title, i_cost FROM item WHERE i_id = ?", {db::Value(i_id)});
  tmpl::Dict data;
  data["i_id"] = tmpl::Value(i_id);
  data["i_image"] = tmpl::Value(image);
  if (!item.empty()) {
    data["i_title"] = to_tmpl(item.at(0, "i_title"));
    data["i_cost"] = to_tmpl(item.at(0, "i_cost"));
  }
  return TemplateResponse{"admin_response.html", std::move(data)};
}

// --- Authentication (the logged-in ordering mix's entry point) ---------------

HandlerResult login(HandlerContext& ctx, TpcwState&) {
  const std::string uname = ctx.param("uname");
  tmpl::Dict data;
  if (uname.empty()) {
    // No credentials: render the form.
    data["error"] = tmpl::Value(false);
    data["logged_in"] = tmpl::Value(false);
    return TemplateResponse{"login.html", std::move(data)};
  }

  auto customer = conn(ctx).execute(
      "SELECT c_id, c_fname, c_lname, c_passwd FROM customer "
      "WHERE c_uname = ?",
      {db::Value(uname)});
  if (customer.empty() ||
      customer.at(0, "c_passwd").as_string() != ctx.param("passwd")) {
    data["error"] = tmpl::Value(true);
    data["logged_in"] = tmpl::Value(false);
    data["uname"] = tmpl::Value(uname);
    return TemplateResponse{"login.html", std::move(data),
                            http::Status::kForbidden};
  }

  // Authenticated: bind the customer identity to this browser's session.
  // ctx.session() issues a fresh session (and its Set-Cookie) when the
  // request carried none. Null only when the server runs without sessions —
  // then login degrades to a stateless welcome page.
  const std::int64_t c_id = customer.at(0, "c_id").as_int();
  if (server::Session* session = ctx.session()) {
    session->set("c_id", tmpl::Value(c_id));
    session->set("c_uname", tmpl::Value(uname));
  }
  data["error"] = tmpl::Value(false);
  data["logged_in"] = tmpl::Value(true);
  data["c_id"] = tmpl::Value(c_id);
  data["c_fname"] = to_tmpl(customer.at(0, "c_fname"));
  data["c_lname"] = to_tmpl(customer.at(0, "c_lname"));
  return TemplateResponse{"login.html", std::move(data)};
}

HandlerResult logout(HandlerContext& ctx, TpcwState&) {
  // Destroys the server-side session and queues the expiring Set-Cookie.
  ctx.end_session();
  tmpl::Dict data;
  data["error"] = tmpl::Value(false);
  data["logged_in"] = tmpl::Value(false);
  data["logged_out"] = tmpl::Value(true);
  return TemplateResponse{"login.html", std::move(data)};
}

Handler bind(HandlerResult (*fn)(HandlerContext&, TpcwState&),
             std::shared_ptr<TpcwState> state) {
  return [fn, state = std::move(state)](HandlerContext& ctx) {
    return fn(ctx, *state);
  };
}

}  // namespace

void register_tpcw_routes(server::Router& router,
                          std::shared_ptr<TpcwState> state) {
  // Catalog pages are cacheable: their output is a pure function of the
  // query parameters and the (slowly-changing) catalog tables, and the two
  // write interactions below invalidate them explicitly. Session-state pages
  // (cart, checkout, orders) and the write paths themselves are never cached.
  server::CachePolicy catalog;
  catalog.depends_on = {"item", "customer"};
  // The three inherently lengthy pages scan whole tables for results that
  // only change when an order or admin update lands — the highest-value
  // entries, invalidated on those writes through the dependency registry.
  server::CachePolicy lengthy_catalog;
  lengthy_catalog.vary_params = {"subject", "c_id"};
  lengthy_catalog.depends_on = {"item"};
  // Best-seller rankings additionally shift whenever an order lands.
  server::CachePolicy best_seller_catalog = lengthy_catalog;
  best_seller_catalog.depends_on.push_back("order_line");
  server::CachePolicy search_results;
  search_results.vary_params = {"type", "term", "c_id"};
  search_results.depends_on = {"item", "author"};

  router.add("/home", bind(home, state), catalog);
  router.add("/new_products", bind(new_products, state), lengthy_catalog);
  router.add("/best_sellers", bind(best_sellers, state), best_seller_catalog);
  router.add("/product_detail", bind(product_detail, state),
             server::CachePolicy{0.0, true, {"i_id", "c_id"}, {"item", "author"}});
  router.add("/search_request", bind(search_request, state),
             server::CachePolicy{0.0, true, {"c_id"}});
  router.add("/execute_search", bind(execute_search, state), search_results);
  router.add("/shopping_cart", bind(shopping_cart, state));
  router.add("/customer_registration", bind(customer_registration, state));
  router.add("/buy_request", bind(buy_request, state));
  router.add("/buy_confirm", bind(buy_confirm, state));
  router.add("/order_inquiry", bind(order_inquiry, state));
  router.add("/order_display", bind(order_display, state));
  router.add("/admin_request", bind(admin_request, state));
  router.add("/admin_response", bind(admin_response, state));
  // Authentication endpoints (the logged-in ordering mix): never cached —
  // their responses carry Set-Cookie headers and depend on credentials, not
  // on the URL.
  router.add("/login", bind(login, state));
  router.add("/logout", bind(logout, state));
}

void register_tpcw_static(server::StaticStore& store) {
  store.add_blob("/img/banner.gif", 5000, "image/gif");
  store.add_blob("/img/logo.gif", 2500, "image/gif");
  for (const char* button : {"home", "search", "new", "best", "cart", "order"}) {
    store.add_blob("/img/button_" + std::string(button) + ".gif", 1000,
                   "image/gif");
  }
  for (int i = 0; i < 100; ++i) {
    store.add_blob("/img/thumb_" + std::to_string(i) + ".gif", 3000,
                   "image/gif");
    store.add_blob("/img/image_" + std::to_string(i) + ".gif", 8000,
                   "image/gif");
  }
}

std::shared_ptr<const server::Application> make_tpcw_application(
    std::shared_ptr<TpcwState> state) {
  auto app = std::make_shared<server::Application>();
  register_tpcw_routes(app->router, std::move(state));
  register_tpcw_static(app->static_store);
  app->templates = make_template_loader();
  return app;
}

const std::vector<std::string>& tpcw_page_paths() {
  static const std::vector<std::string> kPaths = {
      "/admin_request",  "/admin_response", "/best_sellers",
      "/buy_confirm",    "/buy_request",    "/customer_registration",
      "/execute_search", "/home",           "/new_products",
      "/order_display",  "/order_inquiry",  "/product_detail",
      "/search_request", "/shopping_cart"};
  return kPaths;
}

std::string tpcw_page_name(const std::string& path) {
  if (path == "/home") return "TPC-W home interaction";
  if (path == "/shopping_cart") return "TPC-W shopping cart interaction";
  std::string name = path.substr(1);
  for (char& c : name) {
    if (c == '_') c = ' ';
  }
  return "TPC-W " + name;
}

}  // namespace tempest::tpcw
