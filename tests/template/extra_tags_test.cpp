// {% cycle %}, {% firstof %}, {% ifchanged %}, {% spaceless %}.
#include <gtest/gtest.h>

#include "src/template/template.h"

namespace tempest::tmpl {
namespace {

std::string render(const std::string& source, Dict data = {}) {
  return Template::compile(source)->render(data);
}

TEST(CycleTest, RotatesThroughValues) {
  const char* source =
      "{% for x in xs %}{% cycle 'odd' 'even' %};{% endfor %}";
  EXPECT_EQ(render(source, {{"xs", Value(List{Value(1), Value(2), Value(3),
                                              Value(4), Value(5)})}}),
            "odd;even;odd;even;odd;");
}

TEST(CycleTest, ResolvesVariables) {
  const char* source = "{% for x in xs %}{% cycle a b %}{% endfor %}";
  Dict data;
  data["xs"] = Value(List{Value(1), Value(2), Value(3)});
  data["a"] = Value("A");
  data["b"] = Value("B");
  EXPECT_EQ(render(source, data), "ABA");
}

TEST(CycleTest, IndependentAcrossRenders) {
  const auto tmpl = Template::compile(
      "{% for x in xs %}{% cycle '1' '2' %}{% endfor %}");
  Dict data{{"xs", Value(List{Value(0), Value(0), Value(0)})}};
  // Each render starts at the beginning (state is per-render, not per-node).
  EXPECT_EQ(tmpl->render(data), "121");
  EXPECT_EQ(tmpl->render(data), "121");
}

TEST(CycleTest, EscapesOutput) {
  EXPECT_EQ(render("{% for x in xs %}{% cycle v %}{% endfor %}",
                   {{"xs", Value(List{Value(1)})}, {"v", Value("<b>")}}),
            "&lt;b&gt;");
}

TEST(FirstOfTest, PicksFirstTruthy) {
  const char* source = "{% firstof a b 'fallback' %}";
  EXPECT_EQ(render(source, {{"b", Value("second")}}), "second");
  EXPECT_EQ(render(source, {{"a", Value("first")}, {"b", Value("second")}}),
            "first");
  EXPECT_EQ(render(source), "fallback");
}

TEST(FirstOfTest, FalsyValuesSkipped) {
  const char* source = "{% firstof zero empty flag %}";
  Dict data;
  data["zero"] = Value(0);
  data["empty"] = Value("");
  data["flag"] = Value(true);
  EXPECT_EQ(render(source, data), "True");
}

TEST(FirstOfTest, AllFalsyRendersNothing) {
  EXPECT_EQ(render("[{% firstof a b %}]"), "[]");
}

TEST(IfChangedTest, SuppressesRepeats) {
  const char* source =
      "{% for x in xs %}{% ifchanged %}{{ x }}{% endifchanged %}{% endfor %}";
  EXPECT_EQ(render(source, {{"xs", Value(List{Value("a"), Value("a"),
                                              Value("b"), Value("b"),
                                              Value("a")})}}),
            "aba");
}

TEST(IfChangedTest, GroupHeadersUseCase) {
  const char* source =
      "{% for book in books %}"
      "{% ifchanged %}[{{ book.subject }}]{% endifchanged %}"
      "{{ book.id }};{% endfor %}";
  List books;
  books.push_back(Value(Dict{{"subject", Value("ARTS")}, {"id", Value(1)}}));
  books.push_back(Value(Dict{{"subject", Value("ARTS")}, {"id", Value(2)}}));
  books.push_back(Value(Dict{{"subject", Value("HUMOR")}, {"id", Value(3)}}));
  EXPECT_EQ(render(source, {{"books", Value(std::move(books))}}),
            "[ARTS]1;2;[HUMOR]3;");
}

TEST(SpacelessTest, RemovesInterTagWhitespace) {
  EXPECT_EQ(render("{% spaceless %}<ul>\n  <li>x</li>\n  "
                   "<li>y</li>\n</ul>{% endspaceless %}"),
            "<ul><li>x</li><li>y</li></ul>");
}

TEST(SpacelessTest, KeepsTextWhitespace) {
  EXPECT_EQ(render("{% spaceless %}<p>a b</p> text <p>c</p>{% endspaceless %}"),
            "<p>a b</p> text <p>c</p>");
}

TEST(ExtraTagErrors, ArgumentsRequired) {
  EXPECT_THROW(Template::compile("{% cycle %}"), TemplateError);
  EXPECT_THROW(Template::compile("{% firstof %}"), TemplateError);
  EXPECT_THROW(Template::compile("{% ifchanged %}x"), TemplateError);
  EXPECT_THROW(Template::compile("{% spaceless %}x"), TemplateError);
}

}  // namespace
}  // namespace tempest::tmpl
