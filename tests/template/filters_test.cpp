// Parameterized coverage of every registered filter.
#include "src/template/filters.h"

#include <gtest/gtest.h>

#include "src/template/template.h"

namespace tempest::tmpl {
namespace {

// Each case: template source + context + expected output.
struct FilterCase {
  const char* name;
  const char* source;
  Dict data;
  const char* expected;
};

class FilterTest : public ::testing::TestWithParam<FilterCase> {};

TEST_P(FilterTest, RendersExpected) {
  const FilterCase& c = GetParam();
  const auto tmpl = Template::compile(c.source);
  EXPECT_EQ(tmpl->render(c.data), c.expected) << c.name;
}

Dict with(const char* key, Value v) {
  Dict d;
  d[key] = std::move(v);
  return d;
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, FilterTest,
    ::testing::Values(
        FilterCase{"upper", "{{ v|upper }}", with("v", Value("abc")), "ABC"},
        FilterCase{"lower", "{{ v|lower }}", with("v", Value("AbC")), "abc"},
        FilterCase{"capfirst", "{{ v|capfirst }}", with("v", Value("hello")),
                   "Hello"},
        FilterCase{"title", "{{ v|title }}", with("v", Value("war and peace")),
                   "War And Peace"},
        FilterCase{"length_list", "{{ v|length }}",
                   with("v", Value(List{Value(1), Value(2)})), "2"},
        FilterCase{"length_string", "{{ v|length }}", with("v", Value("abcd")),
                   "4"},
        FilterCase{"default_used", "{{ v|default:'x' }}", with("v", Value("")),
                   "x"},
        FilterCase{"default_skipped", "{{ v|default:'x' }}",
                   with("v", Value("set")), "set"},
        FilterCase{"default_if_none_used", "{{ v|default_if_none:'x' }}",
                   with("v", Value()), "x"},
        FilterCase{"default_if_none_skips_falsy", "{{ v|default_if_none:'x' }}",
                   with("v", Value(0)), "0"},
        FilterCase{"join", "{{ v|join:', ' }}",
                   with("v", Value(List{Value("a"), Value("b")})), "a, b"},
        FilterCase{"first", "{{ v|first }}",
                   with("v", Value(List{Value(7), Value(8)})), "7"},
        FilterCase{"last", "{{ v|last }}",
                   with("v", Value(List{Value(7), Value(8)})), "8"},
        FilterCase{"first_empty", "{{ v|first }}", with("v", Value(List{})),
                   ""},
        FilterCase{"truncatewords", "{{ v|truncatewords:2 }}",
                   with("v", Value("one two three four")), "one two ..."},
        FilterCase{"truncatewords_short", "{{ v|truncatewords:9 }}",
                   with("v", Value("one two")), "one two"},
        FilterCase{"floatformat", "{{ v|floatformat:2 }}",
                   with("v", Value(3.14159)), "3.14"},
        FilterCase{"floatformat_int_input", "{{ v|floatformat:1 }}",
                   with("v", Value(4)), "4.0"},
        FilterCase{"add_ints", "{{ v|add:3 }}", with("v", Value(4)), "7"},
        FilterCase{"add_strings", "{{ v|add:'ing' }}", with("v", Value("test")),
                   "testing"},
        FilterCase{"cut", "{{ v|cut:' ' }}", with("v", Value("a b c")), "abc"},
        FilterCase{"yesno_true", "{{ v|yesno:'aye,nay' }}",
                   with("v", Value(true)), "aye"},
        FilterCase{"yesno_false", "{{ v|yesno:'aye,nay' }}",
                   with("v", Value(false)), "nay"},
        FilterCase{"yesno_null", "{{ v|yesno:'aye,nay,dunno' }}",
                   with("v", Value()), "dunno"},
        FilterCase{"pluralize_one", "{{ v|pluralize }}", with("v", Value(1)),
                   ""},
        FilterCase{"pluralize_many", "{{ v|pluralize }}", with("v", Value(3)),
                   "s"},
        FilterCase{"pluralize_suffixes", "{{ v|pluralize:'y,ies' }}",
                   with("v", Value(2)), "ies"},
        FilterCase{"stringformat_d", "{{ v|stringformat:'05d' }}",
                   with("v", Value(42)), "00042"},
        FilterCase{"slice_front", "{{ v|slice:':2'|join:'' }}",
                   with("v", Value(List{Value("a"), Value("b"), Value("c")})),
                   "ab"},
        FilterCase{"slice_back", "{{ v|slice:'1:'|join:'' }}",
                   with("v", Value(List{Value("a"), Value("b"), Value("c")})),
                   "bc"},
        FilterCase{"divisibleby_yes", "{{ v|divisibleby:3 }}",
                   with("v", Value(9)), "True"},
        FilterCase{"divisibleby_no", "{{ v|divisibleby:4 }}",
                   with("v", Value(9)), "False"},
        FilterCase{"urlencode", "{{ v|urlencode }}",
                   with("v", Value("a b&c")), "a+b%26c"}),
    [](const ::testing::TestParamInfo<FilterCase>& info) {
      return info.param.name;
    });

TEST(FilterRegistryTest, ReportsRegisteredNames) {
  const auto names = registered_filter_names();
  EXPECT_GE(names.size(), 20u);
  EXPECT_NE(std::find(names.begin(), names.end(), "upper"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "safe"), names.end());
}

TEST(FilterRegistryTest, MissingRequiredArgumentThrows) {
  const auto tmpl = Template::compile("{{ v|default }}");
  EXPECT_THROW(tmpl->render(Dict{{"v", Value("")}}), TemplateError);
}

TEST(FilterEscapeTest, EscapeForcesEntityEncoding) {
  const auto tmpl = Template::compile("{{ v|escape }}");
  EXPECT_EQ(tmpl->render(Dict{{"v", Value("<b>")}}), "&lt;b&gt;");
}

TEST(FilterEscapeTest, SafeSuppressesAutoescape) {
  const auto tmpl = Template::compile("{{ v|safe }}");
  EXPECT_EQ(tmpl->render(Dict{{"v", Value("<b>")}}), "<b>");
}

}  // namespace
}  // namespace tempest::tmpl
