#include "src/template/lexer.h"

#include <gtest/gtest.h>

namespace tempest::tmpl {
namespace {

TEST(LexerTest, PlainTextIsOneToken) {
  const auto tokens = lex("hello world");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kText);
  EXPECT_EQ(tokens[0].content, "hello world");
}

TEST(LexerTest, VariableTag) {
  const auto tokens = lex("a {{ name }} b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[1].content, "name");
}

TEST(LexerTest, BlockTag) {
  const auto tokens = lex("{% if x %}");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kTag);
  EXPECT_EQ(tokens[0].content, "if x");
}

TEST(LexerTest, CommentTag) {
  const auto tokens = lex("{# note #}");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kComment);
}

TEST(LexerTest, LoneBracesAreText) {
  const auto tokens = lex("function() { return 1; }");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kText);
  EXPECT_EQ(tokens[0].content, "function() { return 1; }");
}

TEST(LexerTest, BraceAtEndOfInput) {
  const auto tokens = lex("trailing {");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].content, "trailing {");
}

TEST(LexerTest, UnterminatedTagThrows) {
  EXPECT_THROW(lex("{{ name"), TemplateError);
  EXPECT_THROW(lex("{% if"), TemplateError);
  EXPECT_THROW(lex("{# c"), TemplateError);
}

TEST(LexerTest, LineNumbersInTokens) {
  const auto tokens = lex("line1\nline2 {{ v }}\n{% tag %}");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].line, 2u);  // {{ v }}
  EXPECT_EQ(tokens[3].line, 3u);  // {% tag %}
}

TEST(LexerTest, AdjacentTags) {
  const auto tokens = lex("{{ a }}{{ b }}{% c %}");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].content, "a");
  EXPECT_EQ(tokens[1].content, "b");
  EXPECT_EQ(tokens[2].content, "c");
}

TEST(LexerTest, WhitespaceInsideTagsIsTrimmed) {
  const auto tokens = lex("{{   spaced   }}");
  EXPECT_EQ(tokens[0].content, "spaced");
}

}  // namespace
}  // namespace tempest::tmpl
