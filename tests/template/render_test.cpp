// Template rendering: tags, loops, conditionals, inheritance, autoescape.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/template/loader.h"
#include "src/template/template.h"

namespace tempest::tmpl {
namespace {

std::string render(const std::string& source, Dict data = {},
                   const TemplateLoader* loader = nullptr) {
  return Template::compile(source)->render(data, loader);
}

TEST(RenderTest, PlainTextPassthrough) {
  EXPECT_EQ(render("hello <b>world</b>"), "hello <b>world</b>");
}

TEST(RenderTest, VariableSubstitution) {
  EXPECT_EQ(render("Hi {{ name }}!", {{"name", Value("Ada")}}), "Hi Ada!");
}

TEST(RenderTest, MissingVariableRendersEmpty) {
  EXPECT_EQ(render("[{{ nope }}]"), "[]");
}

TEST(RenderTest, PaperFigureThreeTemplate) {
  // The exact template of the paper's Figure 3.
  const char* source =
      "<html>\n"
      "<head> <title> {{ title }} </title> </head>\n"
      "<body>\n"
      "<h2 align=\"center\"> {{ heading }} </h2>\n"
      "<ul>\n"
      "{% for item in listitems %}\n"
      "<li> {{ item }} </li>\n"
      "{% endfor %}\n"
      "</ul>\n"
      "</body>\n"
      "</html>\n";
  Dict data;
  data["title"] = Value("My Title");
  data["heading"] = Value("A Heading");
  data["listitems"] = Value(List{Value("one"), Value("two")});
  const std::string html = render(source, data);
  EXPECT_NE(html.find("<title> My Title </title>"), std::string::npos);
  EXPECT_NE(html.find("<h2 align=\"center\"> A Heading </h2>"),
            std::string::npos);
  EXPECT_NE(html.find("<li> one </li>"), std::string::npos);
  EXPECT_NE(html.find("<li> two </li>"), std::string::npos);
}

TEST(RenderTest, IfElifElse) {
  const char* source =
      "{% if n > 10 %}big{% elif n > 5 %}medium{% else %}small{% endif %}";
  EXPECT_EQ(render(source, {{"n", Value(20)}}), "big");
  EXPECT_EQ(render(source, {{"n", Value(7)}}), "medium");
  EXPECT_EQ(render(source, {{"n", Value(1)}}), "small");
}

TEST(RenderTest, IfWithoutElseRendersNothing) {
  EXPECT_EQ(render("{% if missing %}x{% endif %}"), "");
}

TEST(RenderTest, ForLoopWithForloopVariables) {
  const char* source =
      "{% for x in items %}{{ forloop.counter }}:{{ x }}"
      "{% if not forloop.last %},{% endif %}{% endfor %}";
  const std::string out = render(
      source, {{"items", Value(List{Value("a"), Value("b"), Value("c")})}});
  EXPECT_EQ(out, "1:a,2:b,3:c");
}

TEST(RenderTest, ForloopFirstAndRevcounter) {
  const char* source =
      "{% for x in items %}{% if forloop.first %}>{% endif %}"
      "{{ forloop.revcounter0 }}{% endfor %}";
  EXPECT_EQ(render(source,
                   {{"items", Value(List{Value(1), Value(2), Value(3)})}}),
            ">210");
}

TEST(RenderTest, ForEmptyClause) {
  const char* source = "{% for x in items %}{{ x }}{% empty %}none{% endfor %}";
  EXPECT_EQ(render(source, {{"items", Value(List{})}}), "none");
  EXPECT_EQ(render(source), "none");  // missing variable iterates empty
  EXPECT_EQ(render(source, {{"items", Value(List{Value(1)})}}), "1");
}

TEST(RenderTest, ForReversed) {
  const char* source = "{% for x in items reversed %}{{ x }}{% endfor %}";
  EXPECT_EQ(render(source,
                   {{"items", Value(List{Value(1), Value(2), Value(3)})}}),
            "321");
}

TEST(RenderTest, ForOverDictYieldsKeys) {
  const char* source = "{% for k in d %}{{ k }};{% endfor %}";
  EXPECT_EQ(render(source,
                   {{"d", Value(Dict{{"a", Value(1)}, {"b", Value(2)}})}}),
            "a;b;");
}

TEST(RenderTest, ForTwoVarsOverDict) {
  const char* source = "{% for k, v in d %}{{ k }}={{ v }};{% endfor %}";
  EXPECT_EQ(render(source,
                   {{"d", Value(Dict{{"a", Value(1)}, {"b", Value(2)}})}}),
            "a=1;b=2;");
}

TEST(RenderTest, NestedLoops) {
  const char* source =
      "{% for row in grid %}{% for cell in row %}{{ cell }}{% endfor %}|"
      "{% endfor %}";
  Value grid(List{Value(List{Value(1), Value(2)}),
                  Value(List{Value(3), Value(4)})});
  EXPECT_EQ(render(source, {{"grid", grid}}), "12|34|");
}

TEST(RenderTest, LoopVariableScopedToLoop) {
  const char* source = "{% for x in items %}{{ x }}{% endfor %}[{{ x }}]";
  EXPECT_EQ(render(source, {{"items", Value(List{Value(1)})}}), "1[]");
}

TEST(RenderTest, WithTag) {
  const char* source =
      "{% with total=items|length %}{{ total }}/{{ total }}{% endwith %}"
      "[{{ total }}]";
  EXPECT_EQ(render(source,
                   {{"items", Value(List{Value(1), Value(2)})}}),
            "2/2[]");
}

TEST(RenderTest, CommentsProduceNothing) {
  EXPECT_EQ(render("a{# hidden #}b"), "ab");
  EXPECT_EQ(render("a{% comment %}lots {{ of }} stuff{% endcomment %}b"),
            "ab");
}

TEST(RenderTest, AutoescapeOnByDefault) {
  EXPECT_EQ(render("{{ v }}", {{"v", Value("<script>")}}),
            "&lt;script&gt;");
}

TEST(RenderTest, AutoescapeCanBeDisabled) {
  const auto tmpl = Template::compile("{{ v }}");
  EXPECT_EQ(tmpl->render({{"v", Value("<b>")}}, nullptr, /*autoescape=*/false),
            "<b>");
}

TEST(RenderTest, IterationOverScalarThrows) {
  EXPECT_THROW(render("{% for x in n %}{% endfor %}", {{"n", Value(5)}}),
               TemplateError);
}

TEST(RenderTest, ParserErrors) {
  EXPECT_THROW(Template::compile("{% endif %}"), TemplateError);
  EXPECT_THROW(Template::compile("{% if x %}unclosed"), TemplateError);
  EXPECT_THROW(Template::compile("{% for x %}{% endfor %}"), TemplateError);
  EXPECT_THROW(Template::compile("{% unknown %}"), TemplateError);
  EXPECT_THROW(Template::compile("{{ }}"), TemplateError);
  EXPECT_THROW(Template::compile("{% block %}{% endblock %}"), TemplateError);
}

TEST(RenderTest, ErrorsIncludeTemplateNameAndLine) {
  try {
    Template::compile("line1\n{% bogus %}", "page.html");
    FAIL() << "expected TemplateError";
  } catch (const TemplateError& e) {
    EXPECT_NE(std::string(e.what()).find("page.html:2"), std::string::npos)
        << e.what();
  }
}

// --- include / extends -------------------------------------------------------

TEST(InheritanceTest, IncludeInjectsTemplate) {
  MemoryLoader loader;
  loader.add("partial.html", "[{{ name }}]");
  loader.add("page.html", "before {% include 'partial.html' %} after");
  const auto page = loader.load("page.html");
  EXPECT_EQ(page->render({{"name", Value("x")}}, &loader),
            "before [x] after");
}

TEST(InheritanceTest, IncludeWithoutLoaderThrows) {
  const auto tmpl = Template::compile("{% include 'x.html' %}");
  EXPECT_THROW(tmpl->render({}), TemplateError);
}

TEST(InheritanceTest, CircularIncludeDetected) {
  MemoryLoader loader;
  loader.add("a.html", "{% include 'b.html' %}");
  loader.add("b.html", "{% include 'a.html' %}");
  EXPECT_THROW(loader.load("a.html")->render({}, &loader), TemplateError);
}

TEST(InheritanceTest, ChildOverridesBlocks) {
  MemoryLoader loader;
  loader.add("base.html",
             "<title>{% block title %}Default{% endblock %}</title>"
             "<main>{% block content %}{% endblock %}</main>");
  loader.add("child.html",
             "{% extends 'base.html' %}"
             "{% block content %}Hello {{ who }}{% endblock %}");
  const auto child = loader.load("child.html");
  EXPECT_EQ(child->render({{"who", Value("World")}}, &loader),
            "<title>Default</title><main>Hello World</main>");
}

TEST(InheritanceTest, GrandchildOverridesWin) {
  MemoryLoader loader;
  loader.add("base.html", "{% block b %}base{% endblock %}");
  loader.add("mid.html",
             "{% extends 'base.html' %}{% block b %}mid{% endblock %}");
  loader.add("leaf.html",
             "{% extends 'mid.html' %}{% block b %}leaf{% endblock %}");
  EXPECT_EQ(loader.load("leaf.html")->render({}, &loader), "leaf");
  EXPECT_EQ(loader.load("mid.html")->render({}, &loader), "mid");
}

TEST(InheritanceTest, MidLevelBlockSurvivesWhenLeafDoesNotOverride) {
  MemoryLoader loader;
  loader.add("base.html",
             "{% block a %}A{% endblock %}-{% block b %}B{% endblock %}");
  loader.add("mid.html",
             "{% extends 'base.html' %}{% block a %}MID{% endblock %}");
  loader.add("leaf.html", "{% extends 'mid.html' %}");
  EXPECT_EQ(loader.load("leaf.html")->render({}, &loader), "MID-B");
}

TEST(InheritanceTest, DuplicateBlockNamesRejected) {
  EXPECT_THROW(Template::compile(
                   "{% block x %}{% endblock %}{% block x %}{% endblock %}"),
               TemplateError);
}

TEST(LoaderTest, MemoryLoaderCachesCompiledTemplates) {
  MemoryLoader loader;
  loader.add("t.html", "v1 {{ x }}");
  const auto first = loader.load("t.html");
  const auto second = loader.load("t.html");
  EXPECT_EQ(first.get(), second.get());
  loader.add("t.html", "v2 {{ x }}");  // invalidates the cache entry
  const auto third = loader.load("t.html");
  EXPECT_NE(first.get(), third.get());
  EXPECT_EQ(third->render({{"x", Value(1)}}), "v2 1");
}

TEST(LoaderTest, MissingTemplateThrows) {
  MemoryLoader loader;
  EXPECT_THROW(loader.load("nope.html"), TemplateError);
}

TEST(LoaderTest, ConcurrentRendersOfSharedTemplate) {
  // Compiled templates must be safely shareable across rendering threads —
  // the render pool depends on this.
  MemoryLoader loader;
  loader.add("t.html", "{% for x in items %}{{ x }}{% endfor %}");
  const auto tmpl = loader.load("t.html");
  Dict data{{"items", Value(List{Value(1), Value(2), Value(3)})}};
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        if (tmpl->render(data, &loader) != "123") ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(RenderToTest, MatchesStringRenderAndAppends) {
  MemoryLoader loader;
  loader.add("t.html", "Hello {{ name }}!");
  const auto tmpl = loader.load("t.html");
  Dict data{{"name", Value("pool")}};

  RenderBuffer out(16);
  out.append("prefix|");  // render_to appends; existing bytes are preserved
  tmpl->render_to(out, data, &loader);
  EXPECT_EQ(out.view(), "prefix|Hello pool!");
  EXPECT_EQ(tmpl->render(data, &loader), "Hello pool!");
}

TEST(RenderToTest, SizeHintTracksObservedOutputSizes) {
  MemoryLoader loader;
  loader.add("t.html", "{{ body }}");
  const auto tmpl = loader.load("t.html");

  // Before any render the hint is a fixed default.
  const std::size_t initial = tmpl->size_hint();
  EXPECT_GT(initial, 0u);

  const std::string big(8000, 'x');
  for (int i = 0; i < 8; ++i) {
    (void)tmpl->render({{"body", Value(big)}}, &loader);
  }
  // The EWMA converges toward the observed size, plus headroom.
  EXPECT_GT(tmpl->size_hint(), 4000u);
  EXPECT_LT(tmpl->size_hint(), 16000u);

  // A later render reserves at least the hint up front: the buffer arrives
  // pre-sized, so the body lands without growth reallocations.
  RenderBuffer out;
  tmpl->render_to(out, {{"body", Value(big)}}, &loader);
  EXPECT_EQ(out.size(), big.size());
  EXPECT_GE(out.capacity(), 8000u);
}

}  // namespace
}  // namespace tempest::tmpl
