// {% cache %} tag: parsing, the FragmentSink protocol (try_emit /
// on_miss_start / on_miss_end / on_miss_abort), input fingerprinting, and
// transparency when no sink is installed.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/render_buffer.h"
#include "src/template/template.h"

namespace tempest::tmpl {
namespace {

// Records every sink callback; serves canned bodies for chosen keys.
class RecordingSink : public FragmentSink {
 public:
  struct Miss {
    std::string name;
    std::uint64_t fp;
    std::string body;
    double ttl;
  };

  bool try_emit(std::string_view name, std::uint64_t fp,
                std::string& out) override {
    lookups.push_back({std::string(name), fp});
    const auto it = canned.find(std::string(name));
    if (it == canned.end()) return false;
    out.append(it->second);
    return true;
  }
  void on_miss_start() override { ++starts; }
  void on_miss_end(std::string_view name, std::uint64_t fp,
                   std::string_view body, double ttl) override {
    misses.push_back({std::string(name), fp, std::string(body), ttl});
  }
  void on_miss_abort() override { ++aborts; }

  std::map<std::string, std::string> canned;
  std::vector<std::pair<std::string, std::uint64_t>> lookups;
  std::vector<Miss> misses;
  int starts = 0;
  int aborts = 0;
};

std::string render_with(const Template& tmpl, const Dict& data,
                        FragmentSink* sink) {
  RenderBuffer out;
  tmpl.render_to(out, data, nullptr, /*autoescape=*/true, sink);
  return std::string(out.view());
}

TEST(CacheTagTest, TransparentWithoutSink) {
  auto tmpl = Template::compile("a{% cache frag x %}[{{ x }}]{% endcache %}b");
  EXPECT_EQ(tmpl->render({{"x", Value(7)}}), "a[7]b");
  RenderBuffer out;
  tmpl->render_to(out, {{"x", Value(7)}});
  EXPECT_EQ(out.view(), "a[7]b");
}

TEST(CacheTagTest, MissRendersInlineAndReportsExactBody) {
  auto tmpl = Template::compile(
      "pre|{% cache frag ttl=12.5 x %}body {{ x }}{% endcache %}|post");
  RecordingSink sink;
  EXPECT_EQ(render_with(*tmpl, {{"x", Value(3)}}, &sink), "pre|body 3|post");
  ASSERT_EQ(sink.misses.size(), 1u);
  EXPECT_EQ(sink.misses[0].name, "frag");
  EXPECT_EQ(sink.misses[0].body, "body 3");
  EXPECT_DOUBLE_EQ(sink.misses[0].ttl, 12.5);
  EXPECT_EQ(sink.starts, 1);
  EXPECT_EQ(sink.aborts, 0);
}

TEST(CacheTagTest, HitSkipsTheBodyRender) {
  auto tmpl = Template::compile(
      "pre|{% cache frag %}{{ missing|boom }}{% endcache %}|post");
  RecordingSink sink;
  sink.canned["frag"] = "CACHED";
  // The body would render something else entirely; the sink's bytes are
  // emitted verbatim and the sub-tree never runs.
  EXPECT_EQ(render_with(*tmpl, {}, &sink), "pre|CACHED|post");
  EXPECT_TRUE(sink.misses.empty());
  EXPECT_EQ(sink.starts, 0);
}

TEST(CacheTagTest, FingerprintTracksResolvedInputs) {
  auto tmpl =
      Template::compile("{% cache frag a b %}{{ a }}{{ b }}{% endcache %}");
  RecordingSink sink;
  render_with(*tmpl, {{"a", Value(1)}, {"b", Value("x")}}, &sink);
  render_with(*tmpl, {{"a", Value(1)}, {"b", Value("x")}}, &sink);
  render_with(*tmpl, {{"a", Value(2)}, {"b", Value("x")}}, &sink);
  ASSERT_EQ(sink.lookups.size(), 3u);
  EXPECT_EQ(sink.lookups[0].second, sink.lookups[1].second);  // same inputs
  EXPECT_NE(sink.lookups[0].second, sink.lookups[2].second);  // a changed
}

TEST(CacheTagTest, KeylessFragmentHasStableFingerprint) {
  auto tmpl = Template::compile("{% cache frag %}static{% endcache %}");
  RecordingSink sink;
  render_with(*tmpl, {{"a", Value(1)}}, &sink);
  render_with(*tmpl, {{"a", Value(2)}}, &sink);
  ASSERT_EQ(sink.lookups.size(), 2u);
  EXPECT_EQ(sink.lookups[0].second, sink.lookups[1].second);
}

TEST(CacheTagTest, AbortOnThrowInsideBody) {
  // A filter failure mid-body must unwind through on_miss_abort, not
  // on_miss_end: a half-rendered fragment may never be inserted.
  auto tmpl =
      Template::compile("{% cache frag %}{{ n|boom }}{% endcache %}");
  RecordingSink sink;
  RenderBuffer out;
  EXPECT_THROW(tmpl->render_to(out, {{"n", Value(4)}}, nullptr, true, &sink),
               TemplateError);
  EXPECT_EQ(sink.starts, 1);
  EXPECT_EQ(sink.aborts, 1);
  EXPECT_TRUE(sink.misses.empty());
}

TEST(CacheTagTest, NestedCacheReportsInnerThenOuter) {
  auto tmpl = Template::compile(
      "{% cache outer %}O[{% cache inner %}I{% endcache %}]{% endcache %}");
  RecordingSink sink;
  EXPECT_EQ(render_with(*tmpl, {}, &sink), "O[I]");
  ASSERT_EQ(sink.misses.size(), 2u);
  EXPECT_EQ(sink.misses[0].name, "inner");
  EXPECT_EQ(sink.misses[0].body, "I");
  EXPECT_EQ(sink.misses[1].name, "outer");
  EXPECT_EQ(sink.misses[1].body, "O[I]");
}

TEST(CacheTagTest, ParseErrors) {
  EXPECT_THROW(Template::compile("{% cache %}x{% endcache %}"), TemplateError);
  EXPECT_THROW(Template::compile("{% cache frag %}x"), TemplateError);
  EXPECT_THROW(Template::compile("{% cache frag ttl=abc %}x{% endcache %}"),
               TemplateError);
}

}  // namespace
}  // namespace tempest::tmpl
