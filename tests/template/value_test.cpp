#include "src/template/value.h"

#include <gtest/gtest.h>

namespace tempest::tmpl {
namespace {

TEST(ValueTest, TypesAndPredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(42).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value(3.5).is_number());
  EXPECT_TRUE(Value(42).is_number());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(List{}).is_list());
  EXPECT_TRUE(Value(Dict{}).is_dict());
}

TEST(ValueTest, AccessorsThrowOnWrongType) {
  EXPECT_THROW(Value("x").as_int(), TemplateError);
  EXPECT_THROW(Value(1).as_string(), TemplateError);
  EXPECT_THROW(Value(1).as_list(), TemplateError);
  EXPECT_NO_THROW(Value(1).as_double());  // int widens to double
  EXPECT_DOUBLE_EQ(Value(3).as_double(), 3.0);
}

TEST(ValueTest, DjangoTruthiness) {
  EXPECT_FALSE(Value().truthy());
  EXPECT_FALSE(Value(false).truthy());
  EXPECT_FALSE(Value(0).truthy());
  EXPECT_FALSE(Value(0.0).truthy());
  EXPECT_FALSE(Value("").truthy());
  EXPECT_FALSE(Value(List{}).truthy());
  EXPECT_FALSE(Value(Dict{}).truthy());
  EXPECT_TRUE(Value(1).truthy());
  EXPECT_TRUE(Value("x").truthy());
  EXPECT_TRUE(Value(List{Value(0)}).truthy());
}

TEST(ValueTest, DisplayStrings) {
  EXPECT_EQ(Value().str(), "");
  EXPECT_EQ(Value(true).str(), "True");
  EXPECT_EQ(Value(false).str(), "False");
  EXPECT_EQ(Value(42).str(), "42");
  EXPECT_EQ(Value("text").str(), "text");
  EXPECT_EQ(Value(List{Value(1), Value(2)}).str(), "[1, 2]");
}

TEST(ValueTest, MemberAndIndexLookups) {
  Value dict(Dict{{"a", Value(1)}});
  ASSERT_NE(dict.member("a"), nullptr);
  EXPECT_EQ(dict.member("a")->as_int(), 1);
  EXPECT_EQ(dict.member("missing"), nullptr);
  EXPECT_EQ(Value(7).member("a"), nullptr);

  Value list(List{Value("x"), Value("y")});
  ASSERT_NE(list.index(1), nullptr);
  EXPECT_EQ(list.index(1)->str(), "y");
  EXPECT_EQ(list.index(5), nullptr);
}

TEST(ValueTest, SizeSemantics) {
  EXPECT_EQ(Value("abc").size(), 3u);
  EXPECT_EQ(Value(List{Value(1)}).size(), 1u);
  EXPECT_EQ(Value(Dict{{"a", Value(1)}}).size(), 1u);
  EXPECT_EQ(Value(5).size(), 0u);
}

TEST(ValueTest, SetBuildsDictFromNull) {
  Value v;
  v.set("k", Value(9));
  EXPECT_TRUE(v.is_dict());
  EXPECT_EQ(v.member("k")->as_int(), 9);
  EXPECT_THROW(Value(1).set("k", Value(0)), TemplateError);
}

TEST(ValueTest, PushBackBuildsListFromNull) {
  Value v;
  v.push_back(Value(1));
  v.push_back(Value(2));
  EXPECT_EQ(v.size(), 2u);
  EXPECT_THROW(Value("s").push_back(Value(0)), TemplateError);
}

TEST(ValueTest, NumericEqualityCoerces) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_NE(Value(2), Value(2.5));
  EXPECT_NE(Value(2), Value("2"));
  EXPECT_EQ(Value(), Value(nullptr));
}

TEST(ValueTest, DeepEquality) {
  Value a(List{Value(Dict{{"k", Value(1)}})});
  Value b(List{Value(Dict{{"k", Value(1)}})});
  Value c(List{Value(Dict{{"k", Value(2)}})});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ValueTest, CompareOrdersNumbersAndStrings) {
  EXPECT_LT(Value::compare(Value(1), Value(2)), 0);
  EXPECT_GT(Value::compare(Value(2.5), Value(2)), 0);
  EXPECT_EQ(Value::compare(Value("a"), Value("a")), 0);
  EXPECT_LT(Value::compare(Value("a"), Value("b")), 0);
  EXPECT_THROW(Value::compare(Value(1), Value("1")), TemplateError);
  EXPECT_THROW(Value::compare(Value(List{}), Value(List{})), TemplateError);
}

TEST(ValueTest, SharedContainersAreCheapCopies) {
  Value list(List{Value(1)});
  Value copy = list;  // shares storage
  EXPECT_EQ(copy.size(), 1u);
  EXPECT_EQ(copy, list);
}

}  // namespace
}  // namespace tempest::tmpl
