#include "src/template/expr.h"

#include <gtest/gtest.h>

namespace tempest::tmpl {
namespace {

Context make_context() {
  Dict d;
  d["age"] = Value(21);
  d["name"] = Value("ada");
  d["flag"] = Value(true);
  d["zero"] = Value(0);
  d["items"] = Value(List{Value(1), Value(2), Value(3)});
  d["user"] = Value(Dict{{"email", Value("a@b.c")},
                         {"roles", Value(List{Value("admin")})}});
  return Context(d);
}

bool eval(const std::string& text) {
  Context ctx = make_context();
  return parse_bool_expr(text)->evaluate(ctx);
}

Value eval_filter(const std::string& text) {
  Context ctx = make_context();
  return parse_filter_expr(text).evaluate(ctx).value;
}

TEST(ExprTest, TruthinessOfBareVariables) {
  EXPECT_TRUE(eval("flag"));
  EXPECT_FALSE(eval("zero"));
  EXPECT_FALSE(eval("missing"));
  EXPECT_TRUE(eval("items"));
}

TEST(ExprTest, Comparisons) {
  EXPECT_TRUE(eval("age == 21"));
  EXPECT_TRUE(eval("age != 20"));
  EXPECT_TRUE(eval("age >= 21"));
  EXPECT_TRUE(eval("age > 20"));
  EXPECT_FALSE(eval("age < 21"));
  EXPECT_TRUE(eval("age <= 21"));
  EXPECT_TRUE(eval("name == 'ada'"));
  EXPECT_TRUE(eval("name < 'bob'"));
}

TEST(ExprTest, BooleanOperatorsAndPrecedence) {
  EXPECT_TRUE(eval("flag and age == 21"));
  EXPECT_FALSE(eval("flag and zero"));
  EXPECT_TRUE(eval("zero or flag"));
  EXPECT_TRUE(eval("not zero"));
  // 'and' binds tighter than 'or'.
  EXPECT_TRUE(eval("flag or zero and zero"));
  EXPECT_TRUE(eval("not zero and flag"));
}

TEST(ExprTest, InOperator) {
  EXPECT_TRUE(eval("2 in items"));
  EXPECT_FALSE(eval("9 in items"));
  EXPECT_TRUE(eval("'da' in name"));
  EXPECT_TRUE(eval("'admin' in user.roles"));
  EXPECT_TRUE(eval("'email' in user"));
}

TEST(ExprTest, NotInOperator) {
  EXPECT_TRUE(eval("9 not in items"));
  EXPECT_FALSE(eval("2 not in items"));
  EXPECT_TRUE(eval("not 9 in items"));
}

TEST(ExprTest, DottedPathResolution) {
  EXPECT_EQ(eval_filter("user.email").str(), "a@b.c");
  EXPECT_EQ(eval_filter("user.roles.0").str(), "admin");
  EXPECT_TRUE(eval_filter("user.missing").is_null());
  EXPECT_TRUE(eval_filter("user.roles.9").is_null());
}

TEST(ExprTest, Literals) {
  EXPECT_EQ(eval_filter("42").as_int(), 42);
  EXPECT_EQ(eval_filter("-3").as_int(), -3);
  EXPECT_DOUBLE_EQ(eval_filter("2.5").as_double(), 2.5);
  EXPECT_EQ(eval_filter("'quoted'").str(), "quoted");
  EXPECT_EQ(eval_filter("\"double\"").str(), "double");
  EXPECT_TRUE(eval_filter("True").as_bool());
  EXPECT_FALSE(eval_filter("False").as_bool());
  EXPECT_TRUE(eval_filter("None").is_null());
}

TEST(ExprTest, FilterChains) {
  EXPECT_EQ(eval_filter("name|upper").str(), "ADA");
  EXPECT_EQ(eval_filter("items|length").as_int(), 3);
  EXPECT_EQ(eval_filter("missing|default:'fallback'").str(), "fallback");
  EXPECT_EQ(eval_filter("name|upper|lower").str(), "ada");
}

TEST(ExprTest, FilterInCondition) {
  EXPECT_TRUE(eval("items|length == 3"));
  EXPECT_TRUE(eval("name|upper == 'ADA'"));
}

TEST(ExprTest, ComparisonOfUnorderableTypesThrows) {
  EXPECT_THROW(eval("name < 5"), TemplateError);
}

TEST(ExprTest, SyntaxErrors) {
  EXPECT_THROW(parse_bool_expr(""), TemplateError);
  EXPECT_THROW(parse_bool_expr("a =="), TemplateError);
  EXPECT_THROW(parse_bool_expr("a b"), TemplateError);
  EXPECT_THROW(parse_bool_expr("a ==== b"), TemplateError);
  EXPECT_THROW(parse_filter_expr("x|"), TemplateError);
  EXPECT_THROW(parse_filter_expr("'unterminated"), TemplateError);
}

TEST(ExprTest, UnknownFilterThrowsAtEvaluation) {
  Context ctx = make_context();
  const FilterExpr fe = parse_filter_expr("name|nosuchfilter");
  EXPECT_THROW(fe.evaluate(ctx), TemplateError);
}

TEST(TokenizeTest, RespectsQuotedStrings) {
  const auto tokens = tokenize_expression("a == 'b c' and d");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[2], "'b c'");
}

}  // namespace
}  // namespace tempest::tmpl
