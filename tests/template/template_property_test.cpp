// Property-style checks on the template engine: escaping safety, loop
// cardinality, idempotent compilation, and structural invariants over
// randomized inputs.
#include <gtest/gtest.h>

#include <cstring>

#include "src/common/rng.h"
#include "src/common/strutil.h"
#include "src/template/template.h"

namespace tempest::tmpl {
namespace {

class TemplatePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TemplatePropertyTest, AutoescapedOutputNeverContainsRawMarkup) {
  Rng rng(GetParam());
  const auto tmpl = Template::compile("{{ v }}");
  for (int trial = 0; trial < 50; ++trial) {
    // Random strings salted with dangerous characters.
    std::string payload = rng.alnum_string(0, 10);
    const char* kDanger[] = {"<", ">", "&", "\"", "'", "<script>"};
    for (int i = 0; i < 3; ++i) {
      payload += kDanger[rng.uniform_int(0, 5)];
      payload += rng.alnum_string(0, 5);
    }
    const std::string out = tmpl->render({{"v", Value(payload)}});
    EXPECT_EQ(out.find('<'), std::string::npos) << payload;
    EXPECT_EQ(out.find('>'), std::string::npos) << payload;
    EXPECT_EQ(out.find('"'), std::string::npos) << payload;
  }
}

TEST_P(TemplatePropertyTest, EscapedOutputRoundTripsThroughUnescape) {
  Rng rng(GetParam() + 17);
  const auto tmpl = Template::compile("{{ v }}");
  auto unescape = [](std::string s) {
    const std::pair<const char*, const char*> reps[] = {
        {"&lt;", "<"}, {"&gt;", ">"}, {"&quot;", "\""},
        {"&#x27;", "'"}, {"&amp;", "&"}};  // &amp; last
    for (const auto& [from, to] : reps) {
      std::size_t pos = 0;
      while ((pos = s.find(from, pos)) != std::string::npos) {
        s.replace(pos, strlen(from), to);
        pos += strlen(to);
      }
    }
    return s;
  };
  for (int trial = 0; trial < 50; ++trial) {
    std::string payload;
    for (int i = 0; i < 12; ++i) {
      const char c = static_cast<char>(rng.uniform_int(32, 126));
      payload.push_back(c);
    }
    const std::string out = tmpl->render({{"v", Value(payload)}});
    EXPECT_EQ(unescape(out), payload);
  }
}

TEST_P(TemplatePropertyTest, ForLoopEmitsExactlyOneMarkerPerItem) {
  Rng rng(GetParam() + 99);
  const auto tmpl = Template::compile("{% for x in xs %}#{% endfor %}");
  for (int trial = 0; trial < 20; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 200));
    List xs;
    for (std::size_t i = 0; i < n; ++i) xs.push_back(Value(1));
    const std::string out = tmpl->render({{"xs", Value(std::move(xs))}});
    EXPECT_EQ(out.size(), n);
  }
}

TEST_P(TemplatePropertyTest, CounterSequenceIsOneToN) {
  Rng rng(GetParam() + 5);
  const auto tmpl =
      Template::compile("{% for x in xs %}{{ forloop.counter }},{% endfor %}");
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 50));
  List xs(n, Value(0));
  const std::string out = tmpl->render({{"xs", Value(std::move(xs))}});
  const auto parts = split(out, ',', /*keep_empty=*/false);
  ASSERT_EQ(parts.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(parts[i], std::to_string(i + 1));
  }
}

TEST_P(TemplatePropertyTest, ReversedIsExactReverse) {
  Rng rng(GetParam() + 31);
  List xs;
  const auto n = static_cast<std::size_t>(rng.uniform_int(0, 40));
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(Value(static_cast<std::int64_t>(rng.uniform_int(0, 99))));
  }
  const auto fwd = Template::compile("{% for x in xs %}{{ x }};{% endfor %}");
  const auto rev =
      Template::compile("{% for x in xs reversed %}{{ x }};{% endfor %}");
  Dict data{{"xs", Value(xs)}};
  auto split_out = [](const std::string& s) {
    return split(s, ';', /*keep_empty=*/false);
  };
  auto f = split_out(fwd->render(data));
  auto r = split_out(rev->render(data));
  std::reverse(r.begin(), r.end());
  EXPECT_EQ(f, r);
}

TEST_P(TemplatePropertyTest, CompileIsDeterministic) {
  Rng rng(GetParam() + 63);
  const std::string source =
      "{% if a %}{{ b|upper }}{% else %}{{ c|default:'x' }}{% endif %}"
      "{% for i in xs %}{{ i }}{% endfor %}";
  Dict data;
  data["a"] = Value(rng.bernoulli(0.5));
  data["b"] = Value(rng.alnum_string(0, 8));
  data["xs"] = Value(List{Value(1), Value(2)});
  const auto t1 = Template::compile(source);
  const auto t2 = Template::compile(source);
  EXPECT_EQ(t1->render(data), t2->render(data));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemplatePropertyTest,
                         ::testing::Values(1, 2, 3, 71, 2026));

}  // namespace
}  // namespace tempest::tmpl
