#!/usr/bin/env bash
# Builds the tree with -fsanitize=$TEMPEST_SANITIZE and runs the suites that
# exercise the concurrent core — the bounded MPMC queue, worker pools, stage
# traces, the response and fragment caches, the DB engine (sharded plan
# cache, snapshot reads), the template engine, and both server variants —
# under the sanitizer.
#
# Usage: TEMPEST_SANITIZE=thread             tests/run_sanitized.sh
#        TEMPEST_SANITIZE=address,undefined  tests/run_sanitized.sh
#
# The sanitizer value is passed straight to -fsanitize=, so comma-combined
# sanitizers work wherever the toolchain allows the combination.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizer="${TEMPEST_SANITIZE:-thread}"
# build-address,undefined-san is an awkward path; commas become dashes.
build_dir="${BUILD_DIR:-$repo_root/build-${sanitizer//,/-}-san}"

# Sanitized rebuilds are the slowest CI legs; reuse compilations via ccache
# whenever the launcher is installed (the ccache-action in CI, or locally).
launcher_args=()
if command -v ccache >/dev/null 2>&1; then
  launcher_args=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
                 -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "$build_dir" -S "$repo_root" -DTEMPEST_SANITIZE="$sanitizer" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo "${launcher_args[@]}"
cmake --build "$build_dir" -j --target common_test db_test template_test server_test

# Run the binaries directly (ctest registration only covers built targets,
# and a sanitizer failure must fail the script via the gtest exit code).
# halt_on_error makes UBSan findings fatal instead of printed-and-ignored.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
"$build_dir/tests/common_test"
"$build_dir/tests/db_test"
"$build_dir/tests/template_test"
"$build_dir/tests/server_test"
