// Connection layer: latency charging, lock discipline, pool behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/common/clock.h"
#include "src/db/pool.h"

namespace tempest::db {
namespace {

class ConnectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.001);  // 1 paper-s = 1 ms wall: measurable but fast
    TableSchema schema;
    schema.name = "t";
    schema.columns = {{"id", ColumnType::kInt}, {"v", ColumnType::kInt}};
    schema.primary_key = 0;
    db_.create_table(schema);
    auto& table = db_.table("t");
    for (int i = 1; i <= 100; ++i) table.insert({Value(i), Value(i * 10)});
  }

  void TearDown() override { TimeScale::set(0.005); }

  Database db_;
};

TEST_F(ConnectionTest, ExecuteReturnsResults) {
  Connection conn(db_, LatencyModel{}, 0);
  conn.set_charge_latency(false);
  const auto rs = conn.execute("SELECT v FROM t WHERE id = ?", {Value(7)});
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.at(0, "v").as_int(), 70);
  EXPECT_EQ(conn.statements_executed(), 1u);
}

TEST_F(ConnectionTest, LatencyChargedProportionalToScan) {
  LatencyModel model;
  model.base_select = 0.0;
  model.per_row_scanned = 0.1;  // 100 rows -> 10 paper-s -> 10 ms wall
  model.per_row_probed = 0.0;
  model.per_row_returned = 0.0;
  Connection conn(db_, model, 0);
  const Stopwatch watch;
  conn.execute("SELECT v FROM t WHERE v > 0");
  EXPECT_GE(watch.elapsed_paper(), 9.0);
  EXPECT_GE(conn.busy_paper_seconds(), 9.0);
}

TEST_F(ConnectionTest, ChargeCanBeDisabled) {
  LatencyModel model;
  model.per_row_scanned = 1.0;
  Connection conn(db_, model, 0);
  conn.set_charge_latency(false);
  const Stopwatch watch;
  conn.execute("SELECT v FROM t WHERE v > 0");
  EXPECT_LT(watch.elapsed_paper(), 50.0);
}

TEST_F(ConnectionTest, BeginCommitAreFreeNoOps) {
  Connection conn(db_, LatencyModel{}, 0);
  const Stopwatch watch;
  conn.execute("BEGIN");
  conn.execute("COMMIT");
  EXPECT_LT(watch.elapsed_wall_seconds(), 0.05);
}

TEST_F(ConnectionTest, ReadersDoNotBlockEachOther) {
  LatencyModel model;
  model.per_row_scanned = 0.2;  // scan -> 20 paper-s = 20 ms wall each
  Connection a(db_, model, 0);
  Connection b(db_, model, 1);
  const Stopwatch watch;
  std::thread ta([&] { a.execute("SELECT v FROM t WHERE v > 0"); });
  std::thread tb([&] { b.execute("SELECT v FROM t WHERE v > 0"); });
  ta.join();
  tb.join();
  // Serial execution would take ~40ms wall; parallel ~20ms.
  EXPECT_LT(watch.elapsed_wall_seconds(), 0.038);
}

TEST_F(ConnectionTest, WritersSerializeOnTheTable) {
  LatencyModel model;
  model.base_update = 15.0;  // 15 ms wall each, exclusive lock held throughout
  model.per_row_probed = 0;
  model.per_row_affected = 0;
  Connection a(db_, model, 0);
  Connection b(db_, model, 1);
  const Stopwatch watch;
  std::thread ta([&] {
    a.execute("UPDATE t SET v = 1 WHERE id = 1");
  });
  std::thread tb([&] {
    b.execute("UPDATE t SET v = 2 WHERE id = 2");
  });
  ta.join();
  tb.join();
  EXPECT_GE(watch.elapsed_wall_seconds(), 0.028);  // ~serialized
}

TEST_F(ConnectionTest, LongReadDoesNotBlockWriter) {
  // The MVCC-like discipline: the scan's service time is charged after its
  // shared lock is released, so a concurrent UPDATE completes quickly.
  LatencyModel model;
  model.per_row_scanned = 0.5;  // 50 paper-s = 50 ms wall scan
  Connection reader(db_, model, 0);
  Connection writer(db_, model, 1);
  std::thread tr([&] { reader.execute("SELECT v FROM t WHERE v > 0"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const Stopwatch watch;
  writer.execute("UPDATE t SET v = 0 WHERE id = 3");
  EXPECT_LT(watch.elapsed_wall_seconds(), 0.045);
  tr.join();
}

TEST_F(ConnectionTest, StatementCacheSharedThroughDatabase) {
  const auto a = db_.cached_statement("SELECT v FROM t WHERE id = ?");
  const auto b = db_.cached_statement("SELECT v FROM t WHERE id = ?");
  EXPECT_EQ(a.get(), b.get());
}

TEST_F(ConnectionTest, PoolBlocksWhenExhausted) {
  ConnectionPool pool(db_, 1);
  auto lease = pool.acquire();
  EXPECT_EQ(pool.available(), 0u);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto second = pool.acquire();
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(acquired.load());
  lease.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(pool.available(), 1u);
}

TEST_F(ConnectionTest, LeaseMoveTransfersOwnership) {
  ConnectionPool pool(db_, 2);
  auto a = pool.acquire();
  auto b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  EXPECT_EQ(pool.available(), 1u);
  b.release();
  EXPECT_EQ(pool.available(), 2u);
}

TEST_F(ConnectionTest, PoolTracksIdleWhileHeld) {
  ConnectionPool pool(db_, 1);
  {
    auto lease = pool.acquire();
    lease->set_charge_latency(false);
    lease->execute("SELECT v FROM t WHERE id = 1");
    // Hold the connection idle for a while (the paper's waste).
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const auto stats = pool.stats();
  EXPECT_GT(stats.total_held_paper_s, 0.0);
  EXPECT_GT(stats.idle_while_held_fraction(), 0.5);
}

TEST_F(ConnectionTest, PoolCountsOutstandingLeasesInHeldTime) {
  ConnectionPool pool(db_, 2);
  auto lease = pool.acquire();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const auto stats = pool.stats();  // lease still outstanding
  EXPECT_GT(stats.total_held_paper_s, 5.0);  // >= ~10 paper-s at this scale
}

TEST_F(ConnectionTest, ManyThreadsShareThePoolSafely) {
  ConnectionPool pool(db_, 4);
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        auto lease = pool.acquire();
        lease->set_charge_latency(false);
        lease->execute("SELECT v FROM t WHERE id = ?", {Value(1 + i % 100)});
        ++completed;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), 400);
  EXPECT_EQ(pool.available(), 4u);
}

// --- fault injection and recovery --------------------------------------------

std::shared_ptr<FaultPlan> plan_with(FaultSite site, FaultRule rule,
                                     std::uint64_t seed = 1) {
  auto plan = std::make_shared<FaultPlan>(seed);
  rule.enabled = true;
  plan->set(site, rule);
  return plan;
}

TEST_F(ConnectionTest, InjectedErrorRetriedToSuccess) {
  FaultRule rule;
  rule.max_fires = 1;  // first attempt fails, the retry lands
  FaultCounters counters;
  Connection conn(db_, LatencyModel{}, 0,
                  plan_with(FaultSite::kDbError, rule), &counters,
                  RetryPolicy{2, 0.01});
  conn.set_charge_latency(false);
  const auto rs = conn.execute("SELECT v FROM t WHERE id = ?", {Value(7)});
  EXPECT_EQ(rs.at(0, "v").as_int(), 70);
  const auto s = counters.snapshot();
  EXPECT_EQ(s.injected_at(FaultSite::kDbError), 1u);
  EXPECT_EQ(s.db_retries, 1u);
  EXPECT_EQ(s.db_retry_successes, 1u);
}

TEST_F(ConnectionTest, RetryBudgetExhaustedPropagatesInjectedError) {
  FaultCounters counters;
  Connection conn(db_, LatencyModel{}, 0,
                  plan_with(FaultSite::kDbError, FaultRule{}), &counters,
                  RetryPolicy{2, 0.01});
  conn.set_charge_latency(false);
  EXPECT_THROW(conn.execute("SELECT v FROM t WHERE id = 1"), InjectedDbError);
  const auto s = counters.snapshot();
  EXPECT_EQ(s.db_retries, 2u);
  EXPECT_EQ(s.db_retry_successes, 0u);
  // 1 original attempt + 2 retries, all injected.
  EXPECT_EQ(s.injected_at(FaultSite::kDbError), 3u);
  // The connection is intact: clear the plan path by spending nothing more —
  // a fresh connection without a plan still works against the same database.
  Connection clean(db_, LatencyModel{}, 1);
  clean.set_charge_latency(false);
  EXPECT_EQ(clean.execute("SELECT v FROM t WHERE id = 7").at(0, "v").as_int(),
            70);
}

TEST_F(ConnectionTest, InjectedDelayChargesExtraServiceTime) {
  FaultRule rule;
  rule.delay_paper_s = 10.0;  // 10 ms wall at this scale
  rule.max_fires = 1;
  Connection conn(db_, LatencyModel{}, 0,
                  plan_with(FaultSite::kDbDelay, rule), nullptr);
  conn.set_charge_latency(false);
  const Stopwatch watch;
  conn.execute("SELECT v FROM t WHERE id = 1");
  EXPECT_GE(watch.elapsed_paper(), 9.0);
  const Stopwatch second;  // budget spent: back to full speed
  conn.execute("SELECT v FROM t WHERE id = 1");
  EXPECT_LT(second.elapsed_paper(), 5.0);
}

TEST_F(ConnectionTest, InjectedDropBreaksConnectionUntilPoolRepairsIt) {
  FaultRule rule;
  rule.max_fires = 1;
  FaultCounters counters;
  ConnectionPool pool(db_, 1, LatencyModel{},
                      plan_with(FaultSite::kDbDrop, rule), &counters);
  {
    auto lease = pool.acquire();
    lease->set_charge_latency(false);
    EXPECT_THROW(lease->execute("SELECT v FROM t WHERE id = 1"),
                 ConnectionDropped);
    EXPECT_TRUE(lease->broken());
    // A broken connection refuses further statements instead of lying.
    EXPECT_THROW(lease->execute("SELECT v FROM t WHERE id = 1"),
                 ConnectionDropped);
  }
  // give_back shelves the broken connection: it must NOT return to the idle
  // set where the next acquire would receive a dead connection.
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_EQ(pool.broken_count(), 1u);

  EXPECT_EQ(pool.repair_broken(), 1u);
  EXPECT_EQ(pool.broken_count(), 0u);
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_EQ(counters.snapshot().connections_reopened, 1u);

  auto lease = pool.acquire();
  lease->set_charge_latency(false);
  EXPECT_EQ(lease->execute("SELECT v FROM t WHERE id = 7").at(0, "v").as_int(),
            70);
}

TEST_F(ConnectionTest, AcquireForTimesOutInsteadOfBlockingForever) {
  FaultCounters counters;
  ConnectionPool pool(db_, 1, LatencyModel{}, nullptr, &counters);
  auto held = pool.acquire();
  const Stopwatch watch;
  auto lease = pool.acquire_for(5.0);  // 5 paper-s = 5 ms wall
  EXPECT_FALSE(static_cast<bool>(lease));
  EXPECT_GE(watch.elapsed_paper(), 4.0);
  EXPECT_EQ(counters.snapshot().acquire_timeouts, 1u);
}

TEST_F(ConnectionTest, AcquireForSucceedsOnceAConnectionFrees) {
  ConnectionPool pool(db_, 1);
  auto held = pool.acquire();
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    held.release();
  });
  auto lease = pool.acquire_for(1000.0);
  EXPECT_TRUE(static_cast<bool>(lease));
  releaser.join();
}

// --- live resize (the utility controller's actuator, DESIGN.md §15) ---------

TEST_F(ConnectionTest, ResizeGrowOpensConnectionsAndWakesWaiters) {
  ConnectionPool pool(db_, 1);
  auto held = pool.acquire();
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    auto lease = pool.acquire_for(2000.0);
    got.store(static_cast<bool>(lease));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(got.load());
  EXPECT_EQ(pool.resize(3), 3u);  // growth is eager: waiters wake now
  waiter.join();
  EXPECT_TRUE(got.load());
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.target_size(), 3u);
}

TEST_F(ConnectionTest, ResizeShrinkRetiresIdleImmediately) {
  ConnectionPool pool(db_, 4);
  EXPECT_EQ(pool.resize(2), 2u);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.available(), 2u);
  EXPECT_EQ(pool.retired_count(), 2u);
  // The survivors still execute statements.
  auto lease = pool.acquire();
  lease->set_charge_latency(false);
  EXPECT_EQ(lease->execute("SELECT v FROM t WHERE id = 7").at(0, "v").as_int(),
            70);
}

TEST_F(ConnectionTest, ResizeShrinkDrainsCheckedOutViaGiveBack) {
  ConnectionPool pool(db_, 3);
  auto a = pool.acquire();
  auto b = pool.acquire();
  // One idle connection retires at once; one more is owed by the drain
  // (retired_count reports parked + owed).
  EXPECT_EQ(pool.resize(1), 1u);
  EXPECT_EQ(pool.retired_count(), 2u);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.available(), 0u);
  // A checked-out connection is never yanked: it retires on give-back.
  a.release();
  EXPECT_EQ(pool.available(), 0u);
  // The debt is settled, so the last lease returns to the idle list.
  b.release();
  EXPECT_EQ(pool.retired_count(), 2u);
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST_F(ConnectionTest, ResizeGrowRevivesRetiredBeforeOpeningFresh) {
  FaultCounters counters;
  ConnectionPool pool(db_, 4, LatencyModel{}, nullptr, &counters);
  pool.resize(2);
  EXPECT_EQ(pool.retired_count(), 2u);
  pool.resize(4);
  EXPECT_EQ(pool.retired_count(), 0u);
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(pool.available(), 4u);
  // Revived, not newly opened: ids stay stable and the revived connections
  // answer queries again.
  auto lease = pool.acquire();
  lease->set_charge_latency(false);
  EXPECT_EQ(lease->execute("SELECT v FROM t WHERE id = 7").at(0, "v").as_int(),
            70);
}

TEST_F(ConnectionTest, ResizeSupersedesUnfilledShrinkDebt) {
  ConnectionPool pool(db_, 2);
  auto a = pool.acquire();
  auto b = pool.acquire();
  pool.resize(1);  // nothing idle: debt of 1 outstanding
  EXPECT_EQ(pool.retired_count(), 1u);
  // Cancelling the debt keeps the checked-out connections usable — the pool
  // must settle back at exactly 2, neither opening a 3rd connection nor
  // retiring one on give-back.
  pool.resize(2);
  EXPECT_EQ(pool.retired_count(), 0u);
  a.release();
  b.release();
  EXPECT_EQ(pool.retired_count(), 0u);
  EXPECT_EQ(pool.available(), 2u);
  EXPECT_EQ(pool.size(), 2u);
}

TEST_F(ConnectionTest, ShrinkParksBrokenConnectionsInsteadOfRepairingThem) {
  FaultRule rule;
  rule.max_fires = 1;
  ConnectionPool pool(db_, 2, LatencyModel{},
                      plan_with(FaultSite::kDbDrop, rule));
  {
    auto lease = pool.acquire();
    lease->set_charge_latency(false);
    EXPECT_THROW(lease->execute("SELECT v FROM t WHERE id = 1"),
                 ConnectionDropped);
  }
  EXPECT_EQ(pool.broken_count(), 1u);
  // The shrink absorbs the broken connection directly: it parks (cancelling
  // the pending reconnect) and the healthy idle one keeps serving.
  pool.resize(1);
  EXPECT_EQ(pool.broken_count(), 0u);
  EXPECT_EQ(pool.retired_count(), 1u);
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_EQ(pool.repair_broken(), 0u);
}

TEST_F(ConnectionTest, RepairDuringPendingShrinkRetiresInsteadOfRejoining) {
  FaultRule rule;
  rule.max_fires = 1;
  ConnectionPool pool(db_, 2, LatencyModel{},
                      plan_with(FaultSite::kDbDrop, rule));
  auto a = pool.acquire();
  auto b = pool.acquire();
  pool.resize(1);  // nothing idle to retire: the shrink waits on the drain
  // Lease `a` breaks mid-drain and is shelved; the debt stays outstanding
  // (a broken give-back never pays it down).
  a->set_charge_latency(false);
  EXPECT_THROW(a->execute("SELECT v FROM t WHERE id = 1"), ConnectionDropped);
  a.release();
  EXPECT_EQ(pool.broken_count(), 1u);
  // Repairing during the shrink reconnects, then parks: the repaired
  // connection covers the debt instead of rejoining the idle list.
  EXPECT_EQ(pool.repair_broken(), 1u);
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_EQ(pool.retired_count(), 1u);
  // The healthy survivor returns to the idle list as usual.
  b.release();
  EXPECT_EQ(pool.available(), 1u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST_F(ConnectionTest, ResizeFloorsAtOneConnection) {
  ConnectionPool pool(db_, 2);
  EXPECT_EQ(pool.resize(0), 1u);
  EXPECT_EQ(pool.target_size(), 1u);
  EXPECT_EQ(pool.size(), 1u);
}

TEST_F(ConnectionTest, RepeatedResizeUnderLoadLosesNoConnections) {
  ConnectionPool pool(db_, 4);
  std::atomic<bool> stop{false};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      while (!stop.load()) {
        auto lease = pool.acquire_for(2000.0);
        if (!lease) continue;
        lease->set_charge_latency(false);
        lease->execute("SELECT v FROM t WHERE id = ?",
                       {Value(1 + completed.load() % 100)});
        ++completed;
      }
    });
  }
  // The controller's tick cadence, compressed: alternate shrink and grow
  // while the workers hammer the pool.
  for (int round = 0; round < 30; ++round) {
    pool.resize(round % 2 == 0 ? 1 : 6);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  pool.resize(3);
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GT(completed.load(), 0);
  // Every lease has been given back, so the drain has fully settled.
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.available(), 3u);
  EXPECT_EQ(pool.broken_count(), 0u);
}

TEST_F(ConnectionTest, RepairedConnectionWakesAcquireForWaiter) {
  FaultRule rule;
  rule.max_fires = 1;
  ConnectionPool pool(db_, 1, LatencyModel{},
                      plan_with(FaultSite::kDbDrop, rule));
  {
    auto lease = pool.acquire();
    lease->set_charge_latency(false);
    EXPECT_THROW(lease->execute("SELECT 1 FROM t WHERE id = 1"),
                 ConnectionDropped);
  }
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    auto lease = pool.acquire_for(2000.0);
    got.store(static_cast<bool>(lease));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(pool.repair_broken(), 1u);
  waiter.join();
  EXPECT_TRUE(got.load());
}

}  // namespace
}  // namespace tempest::db
