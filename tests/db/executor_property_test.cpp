// Property-based checks: the executor must agree with a naive reference
// evaluation over randomized data and predicates, for every operator, with
// and without indexes, and ORDER BY/LIMIT must respect the reference order.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/db/executor.h"

namespace tempest::db {
namespace {

struct Fixture {
  Database db;
  std::vector<Row> rows;

  explicit Fixture(std::uint64_t seed) {
    TableSchema schema;
    schema.name = "t";
    schema.columns = {{"id", ColumnType::kInt},
                      {"a", ColumnType::kInt},
                      {"b", ColumnType::kInt},
                      {"s", ColumnType::kString}};
    schema.primary_key = 0;
    schema.indexed_columns = {1};  // a indexed, b not
    db.create_table(schema);
    Rng rng(seed);
    auto& table = db.table("t");
    const int n = static_cast<int>(rng.uniform_int(50, 200));
    for (int i = 0; i < n; ++i) {
      Row row = {Value(i), Value(rng.uniform_int(0, 9)),
                 Value(rng.uniform_int(-20, 20)),
                 Value(rng.alnum_string(1, 6))};
      table.insert(row);
      rows.push_back(std::move(row));
    }
  }

  ResultSet run(const std::string& sql, std::vector<Value> params = {}) {
    Executor executor(db);
    return executor.execute(*parse_sql(sql), params);
  }
};

class ExecutorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorPropertyTest, EqualityOnIndexedColumnMatchesReference) {
  Fixture f(GetParam());
  for (std::int64_t key = 0; key <= 9; ++key) {
    const auto rs = f.run("SELECT id FROM t WHERE a = ?", {Value(key)});
    std::size_t expected = 0;
    for (const Row& row : f.rows) {
      if (row[1].as_int() == key) ++expected;
    }
    EXPECT_EQ(rs.size(), expected) << "a = " << key;
  }
}

TEST_P(ExecutorPropertyTest, RangeOnUnindexedColumnMatchesReference) {
  Fixture f(GetParam());
  Rng rng(GetParam() * 31 + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t threshold = rng.uniform_int(-25, 25);
    const auto rs =
        f.run("SELECT id FROM t WHERE b >= ?", {Value(threshold)});
    std::size_t expected = 0;
    for (const Row& row : f.rows) {
      if (row[2].as_int() >= threshold) ++expected;
    }
    EXPECT_EQ(rs.size(), expected) << "b >= " << threshold;
  }
}

TEST_P(ExecutorPropertyTest, ConjunctionIsIntersection) {
  Fixture f(GetParam());
  const auto rs = f.run("SELECT id FROM t WHERE a = 3 AND b < 0");
  std::size_t expected = 0;
  for (const Row& row : f.rows) {
    if (row[1].as_int() == 3 && row[2].as_int() < 0) ++expected;
  }
  EXPECT_EQ(rs.size(), expected);
}

TEST_P(ExecutorPropertyTest, OrderByMatchesStdSort) {
  Fixture f(GetParam());
  const auto rs = f.run("SELECT id, b FROM t ORDER BY b ASC, id ASC");
  ASSERT_EQ(rs.size(), f.rows.size());
  std::vector<std::pair<std::int64_t, std::int64_t>> expected;
  for (const Row& row : f.rows) {
    expected.emplace_back(row[2].as_int(), row[0].as_int());
  }
  std::sort(expected.begin(), expected.end());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(rs.rows[i][1].as_int(), expected[i].first) << i;
    EXPECT_EQ(rs.rows[i][0].as_int(), expected[i].second) << i;
  }
}

TEST_P(ExecutorPropertyTest, LimitIsPrefixOfUnlimited) {
  Fixture f(GetParam());
  const auto full = f.run("SELECT id FROM t ORDER BY b DESC, id ASC");
  const auto limited = f.run("SELECT id FROM t ORDER BY b DESC, id ASC LIMIT 7");
  ASSERT_LE(limited.size(), 7u);
  for (std::size_t i = 0; i < limited.size(); ++i) {
    EXPECT_EQ(limited.rows[i][0].as_int(), full.rows[i][0].as_int());
  }
}

TEST_P(ExecutorPropertyTest, GroupSumsMatchReference) {
  Fixture f(GetParam());
  const auto rs =
      f.run("SELECT a, SUM(b) AS total, COUNT(*) AS n FROM t GROUP BY a");
  std::map<std::int64_t, std::pair<double, std::int64_t>> expected;
  for (const Row& row : f.rows) {
    auto& [sum, count] = expected[row[1].as_int()];
    sum += static_cast<double>(row[2].as_int());
    ++count;
  }
  ASSERT_EQ(rs.size(), expected.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const auto key = rs.rows[i][0].as_int();
    EXPECT_DOUBLE_EQ(rs.at(i, "total").as_double(), expected.at(key).first);
    EXPECT_EQ(rs.at(i, "n").as_int(), expected.at(key).second);
  }
}

TEST_P(ExecutorPropertyTest, LikeAgainstReferenceScan) {
  Fixture f(GetParam());
  const auto rs = f.run("SELECT id FROM t WHERE s LIKE '%a%'");
  std::size_t expected = 0;
  for (const Row& row : f.rows) {
    if (row[3].as_string().find('a') != std::string::npos) ++expected;
  }
  EXPECT_EQ(rs.size(), expected);
}

TEST_P(ExecutorPropertyTest, UpdateThenSelectSeesNewValues) {
  Fixture f(GetParam());
  f.run("UPDATE t SET b = 999 WHERE a = 5");
  const auto rs = f.run("SELECT b FROM t WHERE a = 5");
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs.rows[i][0].as_int(), 999);
  }
  std::size_t expected = 0;
  for (const Row& row : f.rows) {
    if (row[1].as_int() == 5) ++expected;
  }
  EXPECT_EQ(rs.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorPropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 987654321));

}  // namespace
}  // namespace tempest::db
