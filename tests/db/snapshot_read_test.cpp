// Snapshot-mode epoch reads vs paper-accurate MyISAM locking (DESIGN.md §14):
// a reader arriving while an UPDATE is mid-flight sees the pre-write epoch in
// snapshot mode (and returns immediately) but blocks for the post-write state
// in MyISAM mode; both modes agree on visibility once the write commits.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/clock.h"
#include "src/db/connection.h"
#include "src/db/database.h"

namespace tempest::db {
namespace {

class SnapshotReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.001);  // 1 paper-s = 1 ms wall
    TableSchema schema;
    schema.name = "item";
    schema.columns = {{"i_id", ColumnType::kInt},
                      {"i_cost", ColumnType::kInt}};
    schema.primary_key = 0;
    db_.create_table(schema);
    auto& table = db_.table("item");
    for (int i = 1; i <= 20; ++i) table.insert({Value(i), Value(100)});
  }

  void TearDown() override { TimeScale::set(0.005); }

  // A write whose simulated service time is long enough (~100 paper-s = 100 ms
  // wall) for a reader to demonstrably arrive mid-flight.
  LatencyModel slow_write_model() const {
    LatencyModel model;
    model.base_select = 0.0;
    model.per_row_scanned = 0.0;
    model.per_row_probed = 0.0;
    model.per_row_returned = 0.0;
    model.base_update = 100.0;
    model.per_row_affected = 0.0;
    return model;
  }

  // Spin until the admin UPDATE is between lock acquisition and release.
  void wait_for_write_in_flight() {
    const auto& table = db_.table("item");
    while (table.writes_in_flight() == 0) std::this_thread::yield();
  }

  Database db_;
};

TEST_F(SnapshotReadTest, SnapshotReaderSeesPreWriteEpochMidUpdate) {
  Connection writer(db_, slow_write_model(), 0, nullptr, nullptr, {},
                    LockingMode::kSnapshot);
  Connection reader(db_, LatencyModel{}, 1, nullptr, nullptr, {},
                    LockingMode::kSnapshot);
  reader.set_charge_latency(false);

  const auto before_version = db_.table("item").version();
  std::thread admin([&] {
    writer.execute("UPDATE item SET i_cost = ? WHERE i_id > ?",
                   {Value(999), Value(0)});
  });
  wait_for_write_in_flight();

  // Mid-flight: the reader proceeds without waiting out the write's 100
  // paper-s service time and sees the pre-write snapshot.
  const Stopwatch watch;
  const auto rs = reader.execute("SELECT i_cost FROM item WHERE i_id = ?",
                                 {Value(5)});
  EXPECT_LT(watch.elapsed_paper(), 50.0);  // far below the write's 100
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.at(0, "i_cost").as_int(), 100);
  EXPECT_EQ(db_.table("item").version(), before_version);  // not yet applied

  admin.join();
  // Commit point passed: the whole statement became visible atomically.
  EXPECT_EQ(db_.table("item").version(), before_version + 1);
  const auto after = reader.execute("SELECT i_cost FROM item WHERE i_id = ?",
                                    {Value(5)});
  EXPECT_EQ(after.at(0, "i_cost").as_int(), 999);
}

TEST_F(SnapshotReadTest, MyisamReaderBlocksAndSeesPostWriteValue) {
  Connection writer(db_, slow_write_model(), 0);  // kMyisam default
  Connection reader(db_, LatencyModel{}, 1);
  reader.set_charge_latency(false);

  std::thread admin([&] {
    writer.execute("UPDATE item SET i_cost = ? WHERE i_id > ?",
                   {Value(999), Value(0)});
  });
  wait_for_write_in_flight();

  // The paper's Section 4.2.1 anomaly: the reader convoys behind the
  // exclusive table lock for the rest of the write's service time, then
  // observes the post-write state.
  const Stopwatch watch;
  const auto rs = reader.execute("SELECT i_cost FROM item WHERE i_id = ?",
                                 {Value(5)});
  admin.join();
  EXPECT_GT(watch.elapsed_paper(), 10.0);  // sat out most of the write
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.at(0, "i_cost").as_int(), 999);
}

TEST_F(SnapshotReadTest, WriteVisibilityAgreesAcrossModesOnceCommitted) {
  for (const auto mode : {LockingMode::kMyisam, LockingMode::kSnapshot}) {
    Connection conn(db_, LatencyModel{}, 0, nullptr, nullptr, {}, mode);
    conn.set_charge_latency(false);
    conn.execute("UPDATE item SET i_cost = ? WHERE i_id = ?",
                 {Value(7), Value(1)});
    const auto rs = conn.execute("SELECT i_cost FROM item WHERE i_id = ?",
                                 {Value(1)});
    EXPECT_EQ(rs.at(0, "i_cost").as_int(), 7);

    // Cross-mode visibility: a reader in the other mode sees it too.
    Connection other(db_, LatencyModel{}, 1, nullptr, nullptr, {},
                     mode == LockingMode::kMyisam ? LockingMode::kSnapshot
                                                  : LockingMode::kMyisam);
    other.set_charge_latency(false);
    const auto rs2 = other.execute("SELECT i_cost FROM item WHERE i_id = ?",
                                   {Value(1)});
    EXPECT_EQ(rs2.at(0, "i_cost").as_int(), 7);
  }
}

TEST_F(SnapshotReadTest, VersionBumpsOncePerEffectiveWrite) {
  Connection conn(db_, LatencyModel{}, 0, nullptr, nullptr, {},
                  LockingMode::kSnapshot);
  conn.set_charge_latency(false);
  const auto& table = db_.table("item");
  const auto v0 = table.version();

  // Multi-row UPDATE: one statement, one epoch.
  const auto up = conn.execute("UPDATE item SET i_cost = ? WHERE i_id <= ?",
                               {Value(5), Value(10)});
  EXPECT_EQ(up.rows_affected, 10u);
  EXPECT_EQ(table.version(), v0 + 1);
  EXPECT_EQ(up.table_version, v0 + 1);

  // A write that matches nothing leaves the epoch alone.
  const auto noop = conn.execute("UPDATE item SET i_cost = ? WHERE i_id = ?",
                                 {Value(5), Value(12345)});
  EXPECT_EQ(noop.rows_affected, 0u);
  EXPECT_EQ(table.version(), v0 + 1);

  // INSERT and DELETE are one epoch each too.
  conn.execute("INSERT INTO item (i_id, i_cost) VALUES (?, ?)",
               {Value(1000), Value(1)});
  EXPECT_EQ(table.version(), v0 + 2);
  conn.execute("DELETE FROM item WHERE i_id = ?", {Value(1000)});
  EXPECT_EQ(table.version(), v0 + 3);
}

TEST_F(SnapshotReadTest, SnapshotWritersStillSerializePerTable) {
  // MyISAM's one-writer-at-a-time throughput survives in snapshot mode: two
  // concurrent 100 paper-s UPDATEs must take ~200 paper-s end to end.
  Connection a(db_, slow_write_model(), 0, nullptr, nullptr, {},
               LockingMode::kSnapshot);
  Connection b(db_, slow_write_model(), 1, nullptr, nullptr, {},
               LockingMode::kSnapshot);
  const Stopwatch watch;
  std::thread ta([&] {
    a.execute("UPDATE item SET i_cost = ? WHERE i_id = ?",
              {Value(1), Value(1)});
  });
  std::thread tb([&] {
    b.execute("UPDATE item SET i_cost = ? WHERE i_id = ?",
              {Value(2), Value(1)});
  });
  ta.join();
  tb.join();
  EXPECT_GE(watch.elapsed_paper(), 150.0);
}

TEST_F(SnapshotReadTest, SnapshotDeferredErrorsSurfaceBeforeCommit) {
  Connection conn(db_, LatencyModel{}, 0, nullptr, nullptr, {},
                  LockingMode::kSnapshot);
  conn.set_charge_latency(false);
  const auto& table = db_.table("item");
  const auto v0 = table.version();

  // Duplicate primary key: validated while staging, thrown before the commit
  // point, nothing applied, epoch untouched.
  EXPECT_THROW(conn.execute("INSERT INTO item (i_id, i_cost) VALUES (?, ?)",
                            {Value(1), Value(0)}),
               DbError);
  EXPECT_EQ(table.version(), v0);
  EXPECT_EQ(table.row_count(), 20u);
  EXPECT_EQ(table.writes_in_flight(), 0u);  // cleanup ran on the error path

  // Moving a row onto an existing primary key fails the same way.
  EXPECT_THROW(conn.execute("UPDATE item SET i_id = ? WHERE i_id = ?",
                            {Value(2), Value(1)}),
               DbError);
  EXPECT_EQ(table.version(), v0);
}

TEST_F(SnapshotReadTest, LockingModeFromString) {
  EXPECT_EQ(locking_mode_from_string("myisam"), LockingMode::kMyisam);
  EXPECT_EQ(locking_mode_from_string("MyISAM"), LockingMode::kMyisam);
  EXPECT_EQ(locking_mode_from_string("snapshot"), LockingMode::kSnapshot);
  EXPECT_EQ(locking_mode_from_string("SNAPSHOT"), LockingMode::kSnapshot);
  EXPECT_THROW(locking_mode_from_string("innodb"), DbError);
}

}  // namespace
}  // namespace tempest::db
