#include <gtest/gtest.h>

#include "src/db/table.h"

namespace tempest::db {
namespace {

TEST(DbValueTest, TypePredicatesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(1).is_int());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_EQ(Value(7).as_int(), 7);
  EXPECT_DOUBLE_EQ(Value(7).as_double(), 7.0);
  EXPECT_EQ(Value("abc").as_string(), "abc");
  EXPECT_THROW(Value("x").as_int(), DbError);
  EXPECT_THROW(Value().as_double(), DbError);
}

TEST(DbValueTest, SqlComparisonSemantics) {
  EXPECT_EQ(Value::compare(Value(1), Value(1.0)), 0);
  EXPECT_LT(Value::compare(Value(), Value(0)), 0);  // NULL sorts first
  EXPECT_LT(Value::compare(Value("a"), Value("b")), 0);
  EXPECT_THROW(Value::compare(Value(1), Value("1")), DbError);
}

TEST(DbValueTest, EqualityAndHashCoherence) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_EQ(Value(3).hash(), Value(3.0).hash());
  EXPECT_NE(Value(3), Value("3"));
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value(), Value(0));
}

TableSchema make_schema() {
  TableSchema schema;
  schema.name = "t";
  schema.columns = {{"id", ColumnType::kInt},
                    {"group_id", ColumnType::kInt},
                    {"name", ColumnType::kString}};
  schema.primary_key = 0;
  schema.indexed_columns = {1};
  return schema;
}

TEST(TableTest, InsertAndPkLookup) {
  Table table(make_schema());
  table.insert({Value(1), Value(10), Value("a")});
  table.insert({Value(2), Value(10), Value("b")});
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.find_by_pk(Value(2)), 1u);
  EXPECT_EQ(table.find_by_pk(Value(9)), Table::kNotFound);
}

TEST(TableTest, DuplicatePkRejected) {
  Table table(make_schema());
  table.insert({Value(1), Value(10), Value("a")});
  EXPECT_THROW(table.insert({Value(1), Value(11), Value("b")}), DbError);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(TableTest, ArityMismatchRejected) {
  Table table(make_schema());
  EXPECT_THROW(table.insert({Value(1)}), DbError);
}

TEST(TableTest, SecondaryIndexLookup) {
  Table table(make_schema());
  table.insert({Value(1), Value(10), Value("a")});
  table.insert({Value(2), Value(20), Value("b")});
  table.insert({Value(3), Value(10), Value("c")});
  const auto hits = table.find_by_index(1, Value(10));
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(table.find_by_index(1, Value(99)).empty());
}

TEST(TableTest, HasIndexOn) {
  Table table(make_schema());
  EXPECT_TRUE(table.has_index_on(0));  // pk
  EXPECT_TRUE(table.has_index_on(1));  // secondary
  EXPECT_FALSE(table.has_index_on(2));
}

TEST(TableTest, UpdateCellMaintainsSecondaryIndex) {
  Table table(make_schema());
  table.insert({Value(1), Value(10), Value("a")});
  table.update_cell(0, 1, Value(30));
  EXPECT_TRUE(table.find_by_index(1, Value(10)).empty());
  EXPECT_EQ(table.find_by_index(1, Value(30)).size(), 1u);
  EXPECT_EQ(table.row_at(0)[1].as_int(), 30);
}

TEST(TableTest, UpdateCellMaintainsPkIndex) {
  Table table(make_schema());
  table.insert({Value(1), Value(10), Value("a")});
  table.insert({Value(2), Value(10), Value("b")});
  table.update_cell(0, 0, Value(5));
  EXPECT_EQ(table.find_by_pk(Value(5)), 0u);
  EXPECT_EQ(table.find_by_pk(Value(1)), Table::kNotFound);
  EXPECT_THROW(table.update_cell(0, 0, Value(2)), DbError);  // duplicate
}

TEST(TableTest, UpdateCellBoundsChecked) {
  Table table(make_schema());
  table.insert({Value(1), Value(10), Value("a")});
  EXPECT_THROW(table.update_cell(5, 0, Value(9)), DbError);
  EXPECT_THROW(table.update_cell(0, 9, Value(9)), DbError);
}

TEST(TableTest, SchemaValidation) {
  TableSchema bad = make_schema();
  bad.primary_key = 99;
  EXPECT_THROW(Table{bad}, DbError);
  TableSchema bad2 = make_schema();
  bad2.indexed_columns = {99};
  EXPECT_THROW(Table{bad2}, DbError);
}

TEST(SchemaTest, ColumnLookup) {
  const TableSchema schema = make_schema();
  EXPECT_EQ(schema.column_index("name"), 2u);
  EXPECT_FALSE(schema.column_index("missing").has_value());
  EXPECT_EQ(schema.require_column("id"), 0u);
  EXPECT_THROW(schema.require_column("missing"), DbError);
}

}  // namespace
}  // namespace tempest::db
