#include <gtest/gtest.h>

#include "src/db/executor.h"

namespace tempest::db {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema book;
    book.name = "book";
    book.columns = {{"id", ColumnType::kInt},
                    {"author_id", ColumnType::kInt},
                    {"title", ColumnType::kString},
                    {"price", ColumnType::kDouble},
                    {"year", ColumnType::kInt}};
    book.primary_key = 0;
    db_.create_table(book);

    TableSchema author;
    author.name = "writer";
    author.columns = {{"id", ColumnType::kInt}, {"name", ColumnType::kString}};
    author.primary_key = 0;
    db_.create_table(author);

    TableSchema sale;  // deliberately no indexes: forces scans/hash joins
    sale.name = "sale";
    sale.columns = {{"book_id", ColumnType::kInt}, {"qty", ColumnType::kInt}};
    db_.create_table(sale);

    auto& writers = db_.table("writer");
    writers.insert({Value(1), Value("alice")});
    writers.insert({Value(2), Value("bob")});

    auto& books = db_.table("book");
    books.insert({Value(1), Value(1), Value("war"), Value(10.0), Value(2001)});
    books.insert({Value(2), Value(1), Value("peace"), Value(12.5), Value(2003)});
    books.insert({Value(3), Value(2), Value("crime"), Value(8.0), Value(2002)});
    books.insert({Value(4), Value(2), Value("punishment"), Value(30.0),
                  Value(2001)});

    auto& sales = db_.table("sale");
    sales.insert({Value(1), Value(3)});
    sales.insert({Value(2), Value(5)});
    sales.insert({Value(1), Value(2)});
    sales.insert({Value(4), Value(7)});
  }

  ResultSet run(const std::string& sql, std::vector<Value> params = {}) {
    Executor executor(db_);
    return executor.execute(*parse_sql(sql), params);
  }

  Database db_;
};

TEST_F(ExecutorTest, PkLookupUsesIndex) {
  const auto rs = run("SELECT title FROM book WHERE id = ?", {Value(3)});
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.at(0, "title").as_string(), "crime");
  EXPECT_EQ(rs.rows_scanned, 0u);
  EXPECT_LE(rs.rows_probed, 2u);
}

TEST_F(ExecutorTest, FullScanCountsScannedRows) {
  const auto rs = run("SELECT title FROM book WHERE year = 2001");
  EXPECT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs.rows_scanned, 4u);
}

TEST_F(ExecutorTest, SelectStarProjectsAllColumns) {
  const auto rs = run("SELECT * FROM book WHERE id = 1");
  EXPECT_EQ(rs.columns.size(), 5u);
  EXPECT_EQ(rs.at(0, "price").as_double(), 10.0);
}

TEST_F(ExecutorTest, ComparisonOperators) {
  EXPECT_EQ(run("SELECT id FROM book WHERE price > 10").size(), 2u);
  EXPECT_EQ(run("SELECT id FROM book WHERE price >= 10").size(), 3u);
  EXPECT_EQ(run("SELECT id FROM book WHERE price < 10").size(), 1u);
  EXPECT_EQ(run("SELECT id FROM book WHERE year <> 2001").size(), 2u);
  // peace, crime, punishment all contain an 'e'.
  EXPECT_EQ(run("SELECT id FROM book WHERE title LIKE '%e%'").size(), 3u);
}

TEST_F(ExecutorTest, ConjunctionNarrows) {
  const auto rs =
      run("SELECT id FROM book WHERE year = 2001 AND price > 20");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 4);
}

TEST_F(ExecutorTest, JoinViaPrimaryKey) {
  const auto rs = run(
      "SELECT title, name FROM book JOIN writer ON author_id = id "
      "WHERE year = 2001");
  EXPECT_EQ(rs.size(), 2u);
  // Probed rows counted for the indexed join.
  EXPECT_GT(rs.rows_probed, 0u);
}

TEST_F(ExecutorTest, HashJoinOnUnindexedColumn) {
  const auto rs = run(
      "SELECT title, qty FROM book JOIN sale ON id = book_id "
      "WHERE id = 1");
  EXPECT_EQ(rs.size(), 2u);  // two sales of book 1
  EXPECT_GE(rs.rows_scanned, 4u);  // hash build over sale
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  const auto rs = run(
      "SELECT name, qty FROM sale JOIN book ON book_id = book.id "
      "JOIN writer ON author_id = writer.id");
  EXPECT_EQ(rs.size(), 4u);
}

TEST_F(ExecutorTest, OrderByAscDesc) {
  const auto asc = run("SELECT id FROM book ORDER BY price");
  EXPECT_EQ(asc.rows.front()[0].as_int(), 3);
  EXPECT_EQ(asc.rows.back()[0].as_int(), 4);
  const auto desc = run("SELECT id FROM book ORDER BY price DESC");
  EXPECT_EQ(desc.rows.front()[0].as_int(), 4);
}

TEST_F(ExecutorTest, OrderByUnprojectedColumn) {
  // ORDER BY works on columns that are not in the SELECT list.
  const auto rs = run("SELECT title FROM book ORDER BY year DESC, title ASC");
  EXPECT_EQ(rs.rows[0][0].as_string(), "peace");  // 2003
}

TEST_F(ExecutorTest, MultiKeyOrderIsStable) {
  const auto rs = run("SELECT id FROM book ORDER BY year ASC, price DESC");
  // year 2001: ids 4 (30.0) then 1 (10.0); then 2002 id 3; then 2003 id 2.
  ASSERT_EQ(rs.size(), 4u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 4);
  EXPECT_EQ(rs.rows[1][0].as_int(), 1);
  EXPECT_EQ(rs.rows[2][0].as_int(), 3);
  EXPECT_EQ(rs.rows[3][0].as_int(), 2);
}

TEST_F(ExecutorTest, LimitTruncates) {
  const auto rs = run("SELECT id FROM book ORDER BY id LIMIT 2");
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs.rows[1][0].as_int(), 2);
}

TEST_F(ExecutorTest, GroupByWithAggregates) {
  const auto rs = run(
      "SELECT author_id, COUNT(*) AS n, SUM(price) AS total, "
      "MIN(price) AS lo, MAX(price) AS hi, AVG(year) AS avg_year "
      "FROM book GROUP BY author_id ORDER BY author_id");
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs.at(0, "n").as_int(), 2);
  EXPECT_DOUBLE_EQ(rs.at(0, "total").as_double(), 22.5);
  EXPECT_DOUBLE_EQ(rs.at(1, "lo").as_double(), 8.0);
  EXPECT_DOUBLE_EQ(rs.at(1, "hi").as_double(), 30.0);
  EXPECT_DOUBLE_EQ(rs.at(0, "avg_year").as_double(), 2002.0);
}

TEST_F(ExecutorTest, GroupByOrderByAggregateAlias) {
  const auto rs = run(
      "SELECT book_id, SUM(qty) AS total FROM sale GROUP BY book_id "
      "ORDER BY total DESC LIMIT 2");
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs.at(0, "book_id").as_int(), 4);  // qty 7
  EXPECT_EQ(rs.at(1, "book_id").as_int(), 1);  // qty 5 combined
  EXPECT_EQ(rs.at(1, "total").as_double(), 5.0);
}

TEST_F(ExecutorTest, AggregateWithoutGroupByIsOneRow) {
  const auto rs = run("SELECT COUNT(*) AS n, SUM(price) AS s FROM book");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.at(0, "n").as_int(), 4);
  EXPECT_DOUBLE_EQ(rs.at(0, "s").as_double(), 60.5);
}

TEST_F(ExecutorTest, EmptyResultHasColumns) {
  const auto rs = run("SELECT title FROM book WHERE id = 999");
  EXPECT_TRUE(rs.empty());
  EXPECT_EQ(rs.columns.size(), 1u);
}

TEST_F(ExecutorTest, InsertAddsRow) {
  const auto rs = run(
      "INSERT INTO book (id, author_id, title, price, year) "
      "VALUES (?, 1, 'new', 5.0, 2009)",
      {Value(9)});
  EXPECT_EQ(rs.rows_affected, 1u);
  EXPECT_EQ(db_.table("book").row_count(), 5u);
  EXPECT_EQ(run("SELECT title FROM book WHERE id = 9").at(0, "title").as_string(),
            "new");
}

TEST_F(ExecutorTest, InsertMissingColumnsDefaultToNull) {
  run("INSERT INTO sale (book_id) VALUES (2)");
  const auto rs = run("SELECT qty FROM sale WHERE book_id = 2 AND qty = 5");
  EXPECT_EQ(rs.size(), 1u);  // the NULL-qty row does not match qty = 5
}

TEST_F(ExecutorTest, UpdateByPk) {
  const auto rs =
      run("UPDATE book SET price = ? WHERE id = ?", {Value(99.0), Value(1)});
  EXPECT_EQ(rs.rows_affected, 1u);
  EXPECT_DOUBLE_EQ(
      run("SELECT price FROM book WHERE id = 1").at(0, "price").as_double(),
      99.0);
}

TEST_F(ExecutorTest, UpdateWithScanPredicate) {
  const auto rs = run("UPDATE book SET year = 2010 WHERE price < 11");
  EXPECT_EQ(rs.rows_affected, 2u);
  EXPECT_GT(rs.rows_scanned, 0u);
}

TEST_F(ExecutorTest, UpdateNoMatchesAffectsNothing) {
  EXPECT_EQ(run("UPDATE book SET year = 1 WHERE id = 999").rows_affected, 0u);
}

TEST_F(ExecutorTest, MissingParameterRejected) {
  EXPECT_THROW(run("SELECT id FROM book WHERE id = ?"), DbError);
}

TEST_F(ExecutorTest, UnknownColumnOrTableRejected) {
  EXPECT_THROW(run("SELECT nope FROM book"), DbError);
  EXPECT_THROW(run("SELECT id FROM nope"), DbError);
  EXPECT_THROW(run("SELECT id FROM book WHERE nope = 1"), DbError);
}

TEST_F(ExecutorTest, AmbiguousColumnRejected) {
  // `id` exists in both book and writer.
  EXPECT_THROW(
      run("SELECT id FROM book JOIN writer ON author_id = id WHERE id = 1"),
      DbError);
}

TEST_F(ExecutorTest, QualifiedColumnsDisambiguate) {
  const auto rs = run(
      "SELECT book.id FROM book JOIN writer ON author_id = writer.id "
      "WHERE writer.id = 1");
  EXPECT_EQ(rs.size(), 2u);
}

}  // namespace
}  // namespace tempest::db
