// DELETE statements, IN (...) predicates, and tombstone semantics.
#include <gtest/gtest.h>

#include "src/db/executor.h"

namespace tempest::db {
namespace {

class DeleteInTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema schema;
    schema.name = "t";
    schema.columns = {{"id", ColumnType::kInt},
                      {"grp", ColumnType::kInt},
                      {"name", ColumnType::kString}};
    schema.primary_key = 0;
    schema.indexed_columns = {1};
    db_.create_table(schema);
    auto& table = db_.table("t");
    for (int i = 1; i <= 10; ++i) {
      table.insert({Value(i), Value(i % 3), Value("row" + std::to_string(i))});
    }
  }

  ResultSet run(const std::string& sql, std::vector<Value> params = {}) {
    Executor executor(db_);
    return executor.execute(*parse_sql(sql), params);
  }

  db::Database db_;
};

TEST_F(DeleteInTest, DeleteByPk) {
  const auto rs = run("DELETE FROM t WHERE id = 4");
  EXPECT_EQ(rs.rows_affected, 1u);
  EXPECT_EQ(db_.table("t").row_count(), 9u);
  EXPECT_TRUE(run("SELECT id FROM t WHERE id = 4").empty());
}

TEST_F(DeleteInTest, DeleteByIndexedColumn) {
  const auto rs = run("DELETE FROM t WHERE grp = 0");
  EXPECT_EQ(rs.rows_affected, 3u);  // ids 3, 6, 9
  EXPECT_EQ(run("SELECT id FROM t").size(), 7u);
}

TEST_F(DeleteInTest, DeleteWithScanPredicate) {
  const auto rs = run("DELETE FROM t WHERE id > 7");
  EXPECT_EQ(rs.rows_affected, 3u);
  EXPECT_GT(rs.rows_scanned, 0u);
}

TEST_F(DeleteInTest, DeleteAllRows) {
  const auto rs = run("DELETE FROM t");
  EXPECT_EQ(rs.rows_affected, 10u);
  EXPECT_EQ(db_.table("t").row_count(), 0u);
  EXPECT_TRUE(run("SELECT id FROM t").empty());
}

TEST_F(DeleteInTest, DeletedRowsInvisibleToScansAndJoins) {
  run("DELETE FROM t WHERE id = 1");
  const auto rs = run("SELECT COUNT(*) AS n FROM t");
  EXPECT_EQ(rs.at(0, "n").as_int(), 9);
}

TEST_F(DeleteInTest, DeletedPkCanBeReinserted) {
  run("DELETE FROM t WHERE id = 5");
  EXPECT_NO_THROW(
      run("INSERT INTO t (id, grp, name) VALUES (5, 1, 'again')"));
  EXPECT_EQ(run("SELECT name FROM t WHERE id = 5").at(0, "name").as_string(),
            "again");
}

TEST_F(DeleteInTest, DeleteIsIdempotentPerRow) {
  run("DELETE FROM t WHERE id = 2");
  const auto rs = run("DELETE FROM t WHERE id = 2");
  EXPECT_EQ(rs.rows_affected, 0u);
}

TEST_F(DeleteInTest, UpdateSkipsDeletedRows) {
  run("DELETE FROM t WHERE grp = 1");
  const auto rs = run("UPDATE t SET name = 'x' WHERE grp = 1");
  EXPECT_EQ(rs.rows_affected, 0u);
}

TEST_F(DeleteInTest, InPredicateWithLiterals) {
  const auto rs = run("SELECT id FROM t WHERE id IN (2, 4, 99)");
  EXPECT_EQ(rs.size(), 2u);
}

TEST_F(DeleteInTest, InPredicateWithParams) {
  const auto rs = run("SELECT id FROM t WHERE id IN (?, ?, ?)",
                      {Value(1), Value(3), Value(5)});
  EXPECT_EQ(rs.size(), 3u);
}

TEST_F(DeleteInTest, InWithStringsAndConjunction) {
  const auto rs = run(
      "SELECT id FROM t WHERE name IN ('row1', 'row2', 'row3') AND grp = 1");
  // row1 (grp 1), row2 (grp 2), row3 (grp 0) -> only row1.
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 1);
}

TEST_F(DeleteInTest, InOnJoinedTable) {
  TableSchema other;
  other.name = "o";
  other.columns = {{"oid", ColumnType::kInt}, {"ref", ColumnType::kInt}};
  other.primary_key = 0;
  db_.create_table(other);
  db_.table("o").insert({Value(1), Value(2)});
  db_.table("o").insert({Value(2), Value(3)});
  const auto rs = run(
      "SELECT oid FROM o JOIN t ON ref = id WHERE grp IN (0, 2)");
  // ref 2 -> grp 2 (in), ref 3 -> grp 0 (in).
  EXPECT_EQ(rs.size(), 2u);
}

TEST_F(DeleteInTest, DeleteInPredicate) {
  const auto rs = run("DELETE FROM t WHERE id IN (1, 2, 3)");
  EXPECT_EQ(rs.rows_affected, 3u);
  EXPECT_EQ(db_.table("t").row_count(), 7u);
}

TEST_F(DeleteInTest, ParserErrors) {
  EXPECT_THROW(run("DELETE t WHERE id = 1"), DbError);      // missing FROM
  EXPECT_THROW(run("SELECT id FROM t WHERE id IN ()"), DbError);
  EXPECT_THROW(run("SELECT id FROM t WHERE id IN 1"), DbError);
}

TEST_F(DeleteInTest, TableSlotAccounting) {
  auto& table = db_.table("t");
  EXPECT_EQ(table.slot_count(), 10u);
  run("DELETE FROM t WHERE id = 7");
  EXPECT_EQ(table.slot_count(), 10u);  // tombstoned, slot remains
  EXPECT_EQ(table.row_count(), 9u);
  EXPECT_FALSE(table.is_live(6));  // id 7 was at position 6
}

TEST_F(DeleteInTest, DeleteIsWriteStatement) {
  const auto stmt = parse_sql("DELETE FROM t WHERE id = 1");
  EXPECT_TRUE(stmt->is_write());
  ASSERT_EQ(stmt->referenced_tables().size(), 1u);
  EXPECT_EQ(stmt->referenced_tables()[0], "t");
}

}  // namespace
}  // namespace tempest::db
