#include <gtest/gtest.h>

#include "src/db/sql.h"

namespace tempest::db {
namespace {

TEST(SqlParserTest, SimpleSelect) {
  const auto stmt = parse_sql("SELECT a, b FROM t");
  EXPECT_EQ(stmt->kind, StatementKind::kSelect);
  ASSERT_EQ(stmt->select.items.size(), 2u);
  EXPECT_EQ(stmt->select.items[0].column.column, "a");
  EXPECT_EQ(stmt->select.table, "t");
  EXPECT_EQ(stmt->param_count, 0u);
}

TEST(SqlParserTest, SelectStar) {
  const auto stmt = parse_sql("SELECT * FROM item WHERE i_id = ?");
  EXPECT_TRUE(stmt->select.items[0].star);
  ASSERT_EQ(stmt->select.where.size(), 1u);
  EXPECT_TRUE(stmt->select.where[0].rhs.is_param);
  EXPECT_EQ(stmt->param_count, 1u);
}

TEST(SqlParserTest, WhereConjunctionsAndOperators) {
  const auto stmt = parse_sql(
      "SELECT a FROM t WHERE x = 1 AND y <> 2 AND z < 3 AND w >= ? AND "
      "s LIKE '%term%'");
  ASSERT_EQ(stmt->select.where.size(), 5u);
  EXPECT_EQ(stmt->select.where[0].op, CmpOp::kEq);
  EXPECT_EQ(stmt->select.where[1].op, CmpOp::kNe);
  EXPECT_EQ(stmt->select.where[2].op, CmpOp::kLt);
  EXPECT_EQ(stmt->select.where[3].op, CmpOp::kGe);
  EXPECT_EQ(stmt->select.where[4].op, CmpOp::kLike);
  EXPECT_EQ(stmt->select.where[4].rhs.literal.as_string(), "%term%");
}

TEST(SqlParserTest, JoinOnNormalization) {
  const auto stmt = parse_sql(
      "SELECT i_title FROM item JOIN author ON i_a_id = a_id");
  ASSERT_EQ(stmt->select.joins.size(), 1u);
  EXPECT_EQ(stmt->select.joins[0].table, "author");
  EXPECT_EQ(stmt->select.joins[0].left.column, "i_a_id");
  EXPECT_EQ(stmt->select.joins[0].right.column, "a_id");
}

TEST(SqlParserTest, AliasedJoinNormalizesByAlias) {
  const auto stmt = parse_sql(
      "SELECT x FROM t1 a JOIN t2 b ON b.k = a.k");
  ASSERT_EQ(stmt->select.joins.size(), 1u);
  // `right` must reference the joined table's alias b.
  EXPECT_EQ(stmt->select.joins[0].right.table_alias, "b");
  EXPECT_EQ(stmt->select.joins[0].left.table_alias, "a");
}

TEST(SqlParserTest, GroupByOrderByLimit) {
  const auto stmt = parse_sql(
      "SELECT i_id, SUM(ol_qty) AS total FROM order_line "
      "GROUP BY i_id ORDER BY total DESC, i_id ASC LIMIT 50");
  EXPECT_EQ(stmt->select.items[1].agg, AggFunc::kSum);
  EXPECT_EQ(stmt->select.items[1].alias, "total");
  ASSERT_EQ(stmt->select.group_by.size(), 1u);
  ASSERT_EQ(stmt->select.order_by.size(), 2u);
  EXPECT_TRUE(stmt->select.order_by[0].desc);
  EXPECT_FALSE(stmt->select.order_by[1].desc);
  EXPECT_EQ(stmt->select.limit, 50);
}

TEST(SqlParserTest, AggregateForms) {
  const auto stmt = parse_sql(
      "SELECT COUNT(*), COUNT(a), AVG(b), MIN(c), MAX(d) FROM t");
  EXPECT_EQ(stmt->select.items[0].agg, AggFunc::kCount);
  EXPECT_TRUE(stmt->select.items[0].star);
  EXPECT_EQ(stmt->select.items[1].agg, AggFunc::kCount);
  EXPECT_FALSE(stmt->select.items[1].star);
  EXPECT_EQ(stmt->select.items[2].agg, AggFunc::kAvg);
  EXPECT_EQ(stmt->select.items[3].agg, AggFunc::kMin);
  EXPECT_EQ(stmt->select.items[4].agg, AggFunc::kMax);
}

TEST(SqlParserTest, QualifiedColumns) {
  const auto stmt = parse_sql("SELECT t.a FROM t WHERE t.b = 1");
  EXPECT_EQ(stmt->select.items[0].column.table_alias, "t");
  EXPECT_EQ(stmt->select.where[0].column.table_alias, "t");
}

TEST(SqlParserTest, Insert) {
  const auto stmt =
      parse_sql("INSERT INTO t (a, b, c) VALUES (?, 2, 'x')");
  EXPECT_EQ(stmt->kind, StatementKind::kInsert);
  EXPECT_EQ(stmt->insert.table, "t");
  ASSERT_EQ(stmt->insert.columns.size(), 3u);
  EXPECT_TRUE(stmt->insert.values[0].is_param);
  EXPECT_EQ(stmt->insert.values[1].literal.as_int(), 2);
  EXPECT_EQ(stmt->insert.values[2].literal.as_string(), "x");
}

TEST(SqlParserTest, InsertColumnValueMismatchRejected) {
  EXPECT_THROW(parse_sql("INSERT INTO t (a, b) VALUES (1)"), DbError);
}

TEST(SqlParserTest, Update) {
  const auto stmt =
      parse_sql("UPDATE t SET a = ?, b = 'x' WHERE id = ?");
  EXPECT_EQ(stmt->kind, StatementKind::kUpdate);
  ASSERT_EQ(stmt->update.sets.size(), 2u);
  EXPECT_EQ(stmt->update.sets[0].column, "a");
  EXPECT_EQ(stmt->param_count, 2u);
  EXPECT_EQ(stmt->update.where[0].column.column, "id");
}

TEST(SqlParserTest, BeginCommitNoOps) {
  EXPECT_EQ(parse_sql("BEGIN")->kind, StatementKind::kBegin);
  EXPECT_EQ(parse_sql("COMMIT")->kind, StatementKind::kCommit);
}

TEST(SqlParserTest, CaseInsensitiveKeywordsCaseSensitiveIdentifiers) {
  const auto stmt = parse_sql("select MyCol from MyTable where MyCol = 1");
  EXPECT_EQ(stmt->select.items[0].column.column, "MyCol");
  EXPECT_EQ(stmt->select.table, "MyTable");
}

TEST(SqlParserTest, NegativeAndFloatLiterals) {
  const auto stmt = parse_sql("SELECT a FROM t WHERE x = -5 AND y = 2.75");
  EXPECT_EQ(stmt->select.where[0].rhs.literal.as_int(), -5);
  EXPECT_DOUBLE_EQ(stmt->select.where[1].rhs.literal.as_double(), 2.75);
}

TEST(SqlParserTest, NullLiteral) {
  const auto stmt = parse_sql("UPDATE t SET a = NULL");
  EXPECT_TRUE(stmt->update.sets[0].value.literal.is_null());
}

TEST(SqlParserTest, QuotedStringEdgeCases) {
  // Keywords, operators, wildcards, and whitespace inside quotes are data.
  const auto stmt = parse_sql(
      "SELECT a FROM t WHERE s = 'WHERE AND = ?' AND p LIKE '%_50% off_%'");
  ASSERT_EQ(stmt->select.where.size(), 2u);
  EXPECT_EQ(stmt->select.where[0].rhs.literal.as_string(), "WHERE AND = ?");
  EXPECT_EQ(stmt->select.where[1].rhs.literal.as_string(), "%_50% off_%");
  // A '?' inside quotes is not a parameter.
  EXPECT_EQ(stmt->param_count, 0u);
  // The empty string is a valid literal.
  EXPECT_EQ(parse_sql("SELECT a FROM t WHERE s = ''")
                ->select.where[0]
                .rhs.literal.as_string(),
            "");
}

TEST(SqlParserTest, InListEdgeCases) {
  const auto stmt =
      parse_sql("SELECT a FROM t WHERE id IN (1, ?, 'x', ?) AND b = ?");
  ASSERT_EQ(stmt->select.where.size(), 2u);
  const auto& in = stmt->select.where[0];
  EXPECT_EQ(in.op, CmpOp::kIn);
  ASSERT_EQ(in.rhs_list.size(), 4u);
  EXPECT_FALSE(in.rhs_list[0].is_param);
  EXPECT_EQ(in.rhs_list[0].literal.as_int(), 1);
  // Positional parameters inside the list keep statement-wide ordering.
  EXPECT_TRUE(in.rhs_list[1].is_param);
  EXPECT_EQ(in.rhs_list[1].param_index, 0u);
  EXPECT_EQ(in.rhs_list[3].param_index, 1u);
  EXPECT_EQ(stmt->select.where[1].rhs.param_index, 2u);
  EXPECT_EQ(stmt->param_count, 3u);
  // One-element list is fine; an empty list is a syntax error.
  EXPECT_EQ(parse_sql("SELECT a FROM t WHERE id IN (7)")
                ->select.where[0]
                .rhs_list.size(),
            1u);
  EXPECT_THROW(parse_sql("SELECT a FROM t WHERE id IN ()"), DbError);
}

TEST(SqlParserTest, OrderByDisplayNames) {
  // ORDER BY may name a select-item alias, a bare column, or a qualified
  // display name; the parser records them verbatim for bind-time resolution.
  const auto stmt = parse_sql(
      "SELECT o.c_id, COUNT(*) AS cnt FROM orders o "
      "GROUP BY o.c_id ORDER BY cnt DESC, o.c_id");
  ASSERT_EQ(stmt->select.order_by.size(), 2u);
  EXPECT_EQ(stmt->select.order_by[0].column.column, "cnt");
  EXPECT_TRUE(stmt->select.order_by[0].column.table_alias.empty());
  EXPECT_TRUE(stmt->select.order_by[0].desc);
  EXPECT_EQ(stmt->select.order_by[1].column.table_alias, "o");
  EXPECT_EQ(stmt->select.order_by[1].column.display(), "o.c_id");
  EXPECT_FALSE(stmt->select.order_by[1].desc);
}

TEST(SqlParserTest, SyntaxErrors) {
  EXPECT_THROW(parse_sql(""), DbError);
  EXPECT_THROW(parse_sql("DROP TABLE t"), DbError);
  EXPECT_THROW(parse_sql("SELECT FROM t"), DbError);
  EXPECT_THROW(parse_sql("SELECT a FROM"), DbError);
  EXPECT_THROW(parse_sql("SELECT a FROM t WHERE"), DbError);
  EXPECT_THROW(parse_sql("SELECT a FROM t LIMIT x"), DbError);
  EXPECT_THROW(parse_sql("SELECT a FROM t trailing garbage ("), DbError);
  EXPECT_THROW(parse_sql("SELECT a FROM t WHERE s = 'unterminated"), DbError);
}

TEST(SqlParserTest, ReferencedTables) {
  const auto stmt = parse_sql(
      "SELECT a FROM t1 JOIN t2 ON t1.x = t2.y JOIN t3 ON t2.z = t3.w");
  const auto tables = stmt->referenced_tables();
  ASSERT_EQ(tables.size(), 3u);
  EXPECT_EQ(tables[0], "t1");
  EXPECT_FALSE(stmt->is_write());
  EXPECT_TRUE(parse_sql("UPDATE t SET a = 1")->is_write());
  EXPECT_TRUE(parse_sql("INSERT INTO t (a) VALUES (1)")->is_write());
}

struct LikeCase {
  const char* text;
  const char* pattern;
  bool expected;
};

class LikeTest : public ::testing::TestWithParam<LikeCase> {};

TEST_P(LikeTest, Matches) {
  const auto& c = GetParam();
  EXPECT_EQ(like_match(c.text, c.pattern), c.expected)
      << c.text << " LIKE " << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikeTest,
    ::testing::Values(LikeCase{"hello", "hello", true},
                      LikeCase{"hello", "h%", true},
                      LikeCase{"hello", "%o", true},
                      LikeCase{"hello", "%ell%", true},
                      LikeCase{"hello", "%", true},
                      LikeCase{"", "%", true},
                      LikeCase{"hello", "h_llo", true},
                      LikeCase{"hello", "h__lo", true},
                      LikeCase{"hello", "h_lo", false},
                      LikeCase{"hello", "", false},
                      LikeCase{"abcabc", "%abc", true},
                      LikeCase{"abcabd", "%abc", false},
                      LikeCase{"aXbYc", "a%b%c", true},
                      LikeCase{"ac", "a%b%c", false},
                      LikeCase{"Hello", "hello", false},  // case-sensitive
                      LikeCase{"a", "%%", true},
                      LikeCase{"mississippi", "%iss%ppi", true}));

}  // namespace
}  // namespace tempest::db
