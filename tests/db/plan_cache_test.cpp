// Bound-plan cache: hit/miss/rebind accounting, catalog-epoch invalidation,
// heterogeneous lookup, and the concurrent miss/insert hammer that the TSan
// suite leans on (DESIGN.md §14).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/db/connection.h"
#include "src/db/database.h"
#include "src/db/plan.h"

namespace tempest::db {
namespace {

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema schema;
    schema.name = "t";
    schema.columns = {{"id", ColumnType::kInt}, {"v", ColumnType::kInt}};
    schema.primary_key = 0;
    db_.create_table(schema);
    auto& table = db_.table("t");
    for (int i = 1; i <= 50; ++i) table.insert({Value(i), Value(i * 10)});
  }

  Database db_;
};

TEST_F(PlanCacheTest, SecondLookupIsAHit) {
  const auto first = db_.cached_plan("SELECT v FROM t WHERE id = ?");
  const auto second = db_.cached_plan("SELECT v FROM t WHERE id = ?");
  EXPECT_EQ(first.get(), second.get());  // same plan object replayed
  const auto stats = db_.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.rebinds, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST_F(PlanCacheTest, HeterogeneousStringViewLookup) {
  // A string_view over a larger buffer must probe without materializing a
  // std::string and hit the entry cached under the exact text.
  const std::string buffer = "SELECT v FROM t WHERE id = ? -- trailing";
  const std::string_view sql = std::string_view(buffer).substr(0, 28);
  ASSERT_EQ(sql, "SELECT v FROM t WHERE id = ?");
  const auto first = db_.cached_plan(sql);
  const auto second = db_.cached_plan("SELECT v FROM t WHERE id = ?");
  EXPECT_EQ(first.get(), second.get());
}

TEST_F(PlanCacheTest, PlanPrecomputesLocksSortedAndDeduped) {
  const auto plan = db_.cached_plan(
      "SELECT a.v FROM t a JOIN t b ON a.id = b.id WHERE a.id = ?");
  // Self-join references `t` twice; the lock list holds it once.
  ASSERT_EQ(plan->locks().size(), 1u);
  EXPECT_EQ(plan->locks()[0].table->name(), "t");
  EXPECT_FALSE(plan->locks()[0].exclusive);

  const auto write = db_.cached_plan("UPDATE t SET v = ? WHERE id = ?");
  ASSERT_EQ(write->locks().size(), 1u);
  EXPECT_TRUE(write->locks()[0].exclusive);
}

TEST_F(PlanCacheTest, BindFailureIsNotCached) {
  // `missing` doesn't exist: the statement parses but fails to bind, and the
  // failure must not be cached — once the table appears the same SQL works.
  EXPECT_THROW(db_.cached_plan("SELECT x FROM missing WHERE x = ?"), DbError);
  EXPECT_THROW(db_.cached_plan("SELECT x FROM missing WHERE x = ?"), DbError);

  TableSchema schema;
  schema.name = "missing";
  schema.columns = {{"x", ColumnType::kInt}};
  schema.primary_key = 0;
  db_.create_table(schema);
  db_.table("missing").insert({Value(5)});

  Connection conn(db_, LatencyModel{}, 0);
  conn.set_charge_latency(false);
  const auto rs = conn.execute("SELECT x FROM missing WHERE x = ?", {Value(5)});
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs.at(0, "x").as_int(), 5);
}

TEST_F(PlanCacheTest, CatalogChangeRebindsCachedPlan) {
  const auto before = db_.cached_plan("SELECT v FROM t WHERE id = ?");
  const auto epoch_before = before->catalog_epoch();

  TableSchema schema;
  schema.name = "u";
  schema.columns = {{"id", ColumnType::kInt}};
  schema.primary_key = 0;
  db_.create_table(schema);

  // Same SQL after a catalog change: served re-bound against the new epoch,
  // without re-parsing (counted as a rebind, not a miss).
  const auto after = db_.cached_plan("SELECT v FROM t WHERE id = ?");
  EXPECT_GT(after->catalog_epoch(), epoch_before);
  EXPECT_EQ(after->statement().get(), before->statement().get());  // parse reused
  const auto stats = db_.plan_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.rebinds, 1u);

  // And the rebound plan is now current: next lookup is a plain hit.
  const auto third = db_.cached_plan("SELECT v FROM t WHERE id = ?");
  EXPECT_EQ(third.get(), after.get());
  EXPECT_EQ(db_.plan_cache_stats().hits, 1u);
}

TEST_F(PlanCacheTest, ParseErrorsPropagateAndAreNotCached) {
  EXPECT_THROW(db_.cached_plan("SELECT FROM WHERE"), DbError);
  const auto stats = db_.plan_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.rebinds, 0u);
}

// The TSan target: many threads race the same shard (same statement) and
// distinct shards (per-thread statements) through the miss/insert path while
// a catalog mutation forces mid-flight rebinds.
TEST_F(PlanCacheTest, ConcurrentMissInsertHammer) {
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      Connection conn(db_, LatencyModel{}, tid);
      conn.set_charge_latency(false);
      // Per-thread statement text (distinct cache entries) + one shared one.
      const std::string mine = "SELECT v FROM t WHERE id = ? LIMIT " +
                               std::to_string(tid + 1);
      for (int i = 0; i < kIters; ++i) {
        const auto a = conn.execute(mine, {Value(7)});
        const auto b =
            conn.execute("SELECT v FROM t WHERE id = ?", {Value(tid + 1)});
        if (a.size() != 1 || b.size() != 1 ||
            b.at(0, "v").as_int() != (tid + 1) * 10) {
          failed.store(true);
        }
      }
    });
  }
  // Concurrent catalog mutations: every cached plan goes stale and rebinds
  // while the hammer runs.
  for (int n = 0; n < 4; ++n) {
    TableSchema schema;
    schema.name = "extra_" + std::to_string(n);
    schema.columns = {{"id", ColumnType::kInt}};
    schema.primary_key = 0;
    db_.create_table(schema);
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  const auto stats = db_.plan_cache_stats();
  // kThreads distinct statements + 1 shared: at most one miss each (plus
  // races losing the insert), and the vast majority of lookups are hits.
  EXPECT_GE(stats.hits, static_cast<std::uint64_t>(kThreads * kIters));
  EXPECT_GT(stats.hit_rate(), 0.9);
}

// Replay must preserve the executor's cost accounting: the plan chooses the
// same index the per-call resolver chose, so rows_probed/rows_scanned — and
// with them the calibrated latency model — are unchanged.
TEST_F(PlanCacheTest, ReplayPreservesAccessPathAccounting) {
  Connection conn(db_, LatencyModel{}, 0);
  conn.set_charge_latency(false);

  const auto pk = conn.execute("SELECT v FROM t WHERE id = ?", {Value(3)});
  EXPECT_EQ(pk.rows_probed, 1u);  // PK probe, no scan
  EXPECT_EQ(pk.rows_scanned, 0u);

  const auto scan = conn.execute("SELECT v FROM t WHERE v > ?", {Value(0)});
  EXPECT_EQ(scan.rows_scanned, 50u);  // full scan of 50 live rows
  EXPECT_EQ(scan.rows_probed, 0u);

  // Second replays hit the cache and must count identically.
  const auto pk2 = conn.execute("SELECT v FROM t WHERE id = ?", {Value(3)});
  EXPECT_EQ(pk2.rows_probed, pk.rows_probed);
  const auto scan2 = conn.execute("SELECT v FROM t WHERE v > ?", {Value(0)});
  EXPECT_EQ(scan2.rows_scanned, scan.rows_scanned);
}

// Round-trip edge cases through parse → bind → replay: quoted strings,
// IN lists, and ORDER BY on select-item display names survive caching.
TEST_F(PlanCacheTest, RoundTripQuotedStrings) {
  TableSchema schema;
  schema.name = "s";
  schema.columns = {{"id", ColumnType::kInt}, {"name", ColumnType::kString}};
  schema.primary_key = 0;
  db_.create_table(schema);
  auto& table = db_.table("s");
  table.insert({Value(1), Value(std::string("WHERE clause"))});
  table.insert({Value(2), Value(std::string("O%dd _chars"))});

  Connection conn(db_, LatencyModel{}, 0);
  conn.set_charge_latency(false);
  // Keywords and spaces inside quotes are data, twice (cached replay).
  for (int pass = 0; pass < 2; ++pass) {
    const auto rs =
        conn.execute("SELECT id FROM s WHERE name = 'WHERE clause'");
    ASSERT_EQ(rs.size(), 1u);
    EXPECT_EQ(rs.at(0, "id").as_int(), 1);
    // LIKE wildcards stored as data match literally via escaped predicate.
    const auto like = conn.execute("SELECT id FROM s WHERE name LIKE 'O%_%'");
    ASSERT_EQ(like.size(), 1u);
    EXPECT_EQ(like.at(0, "id").as_int(), 2);
  }
}

TEST_F(PlanCacheTest, RoundTripInListsMixLiteralsAndParams) {
  Connection conn(db_, LatencyModel{}, 0);
  conn.set_charge_latency(false);
  for (int pass = 0; pass < 2; ++pass) {
    const auto rs = conn.execute(
        "SELECT v FROM t WHERE id IN (1, ?, 3) ORDER BY id", {Value(2)});
    ASSERT_EQ(rs.size(), 3u);
    EXPECT_EQ(rs.at(0, "v").as_int(), 10);
    EXPECT_EQ(rs.at(1, "v").as_int(), 20);
    EXPECT_EQ(rs.at(2, "v").as_int(), 30);
  }
}

TEST_F(PlanCacheTest, RoundTripOrderByDisplayNames) {
  Connection conn(db_, LatencyModel{}, 0);
  conn.set_charge_latency(false);
  for (int pass = 0; pass < 2; ++pass) {
    // ORDER BY names the aggregate's alias — resolved against output columns
    // at bind time, stable across cached replays.
    const auto rs = conn.execute(
        "SELECT id, SUM(v) AS total FROM t WHERE id <= ? "
        "GROUP BY id ORDER BY total DESC LIMIT 3",
        {Value(10)});
    ASSERT_EQ(rs.size(), 3u);
    EXPECT_DOUBLE_EQ(rs.at(0, "total").as_double(), 100.0);
    EXPECT_DOUBLE_EQ(rs.at(1, "total").as_double(), 90.0);
    EXPECT_DOUBLE_EQ(rs.at(2, "total").as_double(), 80.0);
    // And by a qualified order key against the bare output name.
    const auto asc = conn.execute(
        "SELECT a.id FROM t a WHERE a.id <= 3 ORDER BY a.id");
    ASSERT_EQ(asc.size(), 3u);
    EXPECT_EQ(asc.at(0, "id").as_int(), 1);
  }
}

}  // namespace
}  // namespace tempest::db
