#include <gtest/gtest.h>

#include "src/metrics/series.h"
#include "src/metrics/table.h"

namespace tempest::metrics {
namespace {

TEST(TableTest, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"a-much-longer-name", "23456"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha "), std::string::npos);
  // Numeric columns right-aligned: "1" padded to width of "23456".
  EXPECT_NE(out.find("|     1 |"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableTest, ShortRowsPaddedToHeaderArity) {
  Table table({"a", "b", "c"});
  table.add_row({"only"});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("only,,"), std::string::npos);
}

TEST(TableTest, CsvHasHeaderFirst) {
  Table table({"x", "y"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "x,y\n1,2\n");
}

TEST(TableTest, EmptyHeadersRejected) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(FormatTest, Doubles) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(FormatTest, Ints) {
  EXPECT_EQ(format_int(42), "42");
  EXPECT_EQ(format_int(-7), "-7");
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(format_percent(0.313), "+31.3%");
  EXPECT_EQ(format_percent(-0.05), "-5.0%");
}

TEST(AsciiChartTest, EmptySeriesSaysSo) {
  const std::string out = ascii_chart({"empty", {}});
  EXPECT_NE(out.find("(no data)"), std::string::npos);
}

TEST(AsciiChartTest, PlotsPointsWithinAxes) {
  NamedSeries series{"ramp", {}};
  for (int i = 0; i <= 100; ++i) {
    series.points.push_back({static_cast<double>(i), static_cast<double>(i)});
  }
  const std::string out = ascii_chart(series, 40, 8);
  EXPECT_NE(out.find("ramp"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("t = 0 .. 100"), std::string::npos);
}

TEST(AsciiChartTest, SummaryStatsAppended) {
  NamedSeries series{"s", {{0, 1}, {1, 3}, {2, 5}}};
  const std::string out = ascii_charts({series});
  EXPECT_NE(out.find("n=3"), std::string::npos);
  EXPECT_NE(out.find("mean=3.0"), std::string::npos);
  EXPECT_NE(out.find("max=5.0"), std::string::npos);
}

TEST(SeriesCsvTest, AlignsSeriesOnSharedBuckets) {
  NamedSeries a{"a", {{0, 1}, {10, 2}}};
  NamedSeries b{"b", {{10, 4}}};
  const std::string csv = series_csv({a, b}, 10.0);
  EXPECT_NE(csv.find("t,a,b"), std::string::npos);
  EXPECT_NE(csv.find("0.0,1.000,"), std::string::npos);
  EXPECT_NE(csv.find("10.0,2.000,4.000"), std::string::npos);
}

TEST(SeriesCsvTest, BucketMeansAveraged) {
  NamedSeries a{"a", {{0, 2}, {1, 4}}};  // same bucket at width 10
  const std::string csv = series_csv({a}, 10.0);
  EXPECT_NE(csv.find("0.0,3.000"), std::string::npos);
}

}  // namespace
}  // namespace tempest::metrics
