// FaultPlan mechanics: spec parsing, per-site rules (probability, budget,
// window), counter accounting, and — the property the whole chaos suite
// leans on — determinism: the fault decisions are a pure function of
// (seed, site, check index), so equal check counts give equal injections.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "src/common/fault.h"

namespace tempest {
namespace {

TEST(FaultSiteTest, NamesRoundTrip) {
  for (std::size_t i = 0; i < kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    FaultSite parsed;
    ASSERT_TRUE(fault_site_from_name(fault_site_name(site), &parsed))
        << fault_site_name(site);
    EXPECT_EQ(parsed, site);
  }
  FaultSite ignored;
  EXPECT_FALSE(fault_site_from_name("db.statement.typo", &ignored));
}

TEST(FaultPlanTest, DisabledSitesNeverFire) {
  FaultPlan plan(1);
  for (std::size_t i = 0; i < kNumFaultSites; ++i) {
    EXPECT_FALSE(plan.should_fire(static_cast<FaultSite>(i), nullptr, 0.0));
  }
  EXPECT_FALSE(plan.db_faulting(0.0));
}

TEST(FaultPlanTest, ProbabilityOneAlwaysFiresAndCounts) {
  FaultPlan plan(7);
  FaultRule rule;
  rule.enabled = true;
  plan.set(FaultSite::kDbError, rule);
  FaultCounters counters;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(plan.should_fire(FaultSite::kDbError, &counters, 0.0));
  }
  EXPECT_EQ(plan.fires(FaultSite::kDbError), 5u);
  EXPECT_EQ(plan.checks(FaultSite::kDbError), 5u);
  EXPECT_EQ(counters.snapshot().injected_at(FaultSite::kDbError), 5u);
  EXPECT_EQ(counters.snapshot().injected_total(), 5u);
}

TEST(FaultPlanTest, MaxFiresCapsInjections) {
  FaultPlan plan(7);
  FaultRule rule;
  rule.enabled = true;
  rule.max_fires = 3;
  plan.set(FaultSite::kHandler, rule);
  int fired = 0;
  for (int i = 0; i < 20; ++i) {
    if (plan.should_fire(FaultSite::kHandler, nullptr, 0.0)) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(plan.fires(FaultSite::kHandler), 3u);
}

TEST(FaultPlanTest, WindowGatesFiring) {
  FaultPlan plan(7);
  FaultRule rule;
  rule.enabled = true;
  rule.window_start_paper_s = 10.0;
  rule.window_end_paper_s = 20.0;
  plan.set(FaultSite::kRender, rule);
  EXPECT_FALSE(plan.should_fire(FaultSite::kRender, nullptr, 9.9));
  EXPECT_TRUE(plan.should_fire(FaultSite::kRender, nullptr, 10.0));
  EXPECT_TRUE(plan.should_fire(FaultSite::kRender, nullptr, 19.9));
  EXPECT_FALSE(plan.should_fire(FaultSite::kRender, nullptr, 20.0));
  // Out-of-window checks do not consume decision indices.
  EXPECT_EQ(plan.checks(FaultSite::kRender), 2u);
}

TEST(FaultPlanTest, FractionalProbabilityFiresRoughlyThatOften) {
  FaultPlan plan(12345);
  FaultRule rule;
  rule.enabled = true;
  rule.probability = 0.3;
  plan.set(FaultSite::kDbDelay, rule);
  int fired = 0;
  constexpr int kChecks = 10000;
  for (int i = 0; i < kChecks; ++i) {
    if (plan.should_fire(FaultSite::kDbDelay, nullptr, 0.0)) ++fired;
  }
  EXPECT_GT(fired, kChecks * 0.25);
  EXPECT_LT(fired, kChecks * 0.35);
}

TEST(FaultPlanTest, SameSeedSameDecisionSequence) {
  const auto run = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    FaultRule rule;
    rule.enabled = true;
    rule.probability = 0.5;
    plan.set(FaultSite::kSocketReset, rule);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(plan.should_fire(FaultSite::kSocketReset, nullptr, 0.0));
    }
    return fires;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FaultPlanTest, ConcurrentCheckersFireExactlyThePlannedCount) {
  // The determinism contract under threads: N checks at p=0.5 consume
  // decision indices 0..N-1 in some order, so the TOTAL fires equals the
  // number of true decisions in that index range regardless of interleaving.
  const auto planned = [] {
    FaultPlan plan(99);
    FaultRule rule;
    rule.enabled = true;
    rule.probability = 0.5;
    plan.set(FaultSite::kDbError, rule);
    std::uint64_t fires = 0;
    for (int i = 0; i < 4000; ++i) {
      if (plan.should_fire(FaultSite::kDbError, nullptr, 0.0)) ++fires;
    }
    return fires;
  }();

  FaultPlan plan(99);
  FaultRule rule;
  rule.enabled = true;
  rule.probability = 0.5;
  plan.set(FaultSite::kDbError, rule);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&plan] {
      for (int i = 0; i < 1000; ++i) {
        plan.should_fire(FaultSite::kDbError, nullptr, 0.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(plan.checks(FaultSite::kDbError), 4000u);
  EXPECT_EQ(plan.fires(FaultSite::kDbError), planned);
}

TEST(FaultPlanTest, ParsesFullSpec) {
  const auto plan = FaultPlan::parse(
      "seed=42;db.statement.delay:p=0.5,delay=5,start=10,end=20,max=3;"
      "transport.reset:p=0.01");
  EXPECT_EQ(plan->seed(), 42u);
  const FaultRule& delay = plan->rule(FaultSite::kDbDelay);
  EXPECT_TRUE(delay.enabled);
  EXPECT_DOUBLE_EQ(delay.probability, 0.5);
  EXPECT_DOUBLE_EQ(delay.delay_paper_s, 5.0);
  EXPECT_DOUBLE_EQ(delay.window_start_paper_s, 10.0);
  EXPECT_DOUBLE_EQ(delay.window_end_paper_s, 20.0);
  EXPECT_EQ(delay.max_fires, 3u);
  const FaultRule& reset = plan->rule(FaultSite::kSocketReset);
  EXPECT_TRUE(reset.enabled);
  EXPECT_DOUBLE_EQ(reset.probability, 0.01);
  EXPECT_FALSE(plan->rule(FaultSite::kHandler).enabled);
}

TEST(FaultPlanTest, BareSiteNameEnablesWithDefaults) {
  const auto plan = FaultPlan::parse("handler.throw");
  EXPECT_TRUE(plan->rule(FaultSite::kHandler).enabled);
  EXPECT_DOUBLE_EQ(plan->rule(FaultSite::kHandler).probability, 1.0);
}

TEST(FaultPlanTest, ParseRejectsGarbage) {
  EXPECT_THROW(FaultPlan::parse("no.such.site"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("handler.throw:bogus=1"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("handler.throw:p=abc"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("handler.throw:p"), std::invalid_argument);
}

TEST(FaultPlanTest, DbFaultingTracksWindowAndBudget) {
  const auto plan =
      FaultPlan::parse("db.statement.error:start=10,end=20,max=2");
  EXPECT_FALSE(plan->db_faulting(5.0));
  EXPECT_TRUE(plan->db_faulting(15.0));
  EXPECT_FALSE(plan->db_faulting(25.0));
  // Spend the budget: the site goes quiet even inside the window.
  EXPECT_TRUE(plan->should_fire(FaultSite::kDbError, nullptr, 15.0));
  EXPECT_TRUE(plan->should_fire(FaultSite::kDbError, nullptr, 15.0));
  EXPECT_FALSE(plan->db_faulting(15.0));
  // A non-DB site never makes db_faulting true.
  const auto render = FaultPlan::parse("render.fail");
  EXPECT_FALSE(render->db_faulting(0.0));
}

TEST(FaultCountersTest, SnapshotsCompareEqualForEqualHistories) {
  FaultCounters a, b;
  a.on_injected(FaultSite::kDbDrop);
  a.on_db_retry();
  a.on_deadline_rejected();
  b.on_injected(FaultSite::kDbDrop);
  b.on_db_retry();
  b.on_deadline_rejected();
  EXPECT_EQ(a.snapshot(), b.snapshot());
  b.on_degraded_stale();
  EXPECT_FALSE(a.snapshot() == b.snapshot());
}

}  // namespace
}  // namespace tempest
