#include "src/common/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <semaphore>
#include <set>
#include <stdexcept>

namespace tempest {
namespace {

TEST(WorkerPoolTest, ProcessesAllSubmittedItems) {
  std::atomic<int> sum{0};
  {
    WorkerPool<int> pool("adders", 4, [&](int&& v) { sum += v; });
    for (int i = 1; i <= 100; ++i) pool.submit(i);
    pool.shutdown();
  }
  EXPECT_EQ(sum.load(), 5050);
}

TEST(WorkerPoolTest, ProcessedCounterMatches) {
  WorkerPool<int> pool("count", 2, [](int&&) {});
  for (int i = 0; i < 37; ++i) pool.submit(i);
  pool.shutdown();
  EXPECT_EQ(pool.processed(), 37u);
}

TEST(WorkerPoolTest, ThreadInitAndExitRunOncePerThread) {
  std::atomic<int> inits{0};
  std::atomic<int> exits{0};
  {
    WorkerPool<int> pool(
        "hooks", 3, [](int&&) {}, [&] { ++inits; }, [&] { ++exits; });
    pool.submit(1);
    pool.shutdown();
  }
  EXPECT_EQ(inits.load(), 3);
  EXPECT_EQ(exits.load(), 3);
}

TEST(WorkerPoolTest, SpareCountReflectsBusyThreads) {
  std::atomic<bool> release{false};
  WorkerPool<int> pool("busy", 4, [&](int&&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  EXPECT_EQ(pool.spare_count(), 4u);
  pool.submit(1);
  pool.submit(2);
  // Wait for both to be picked up.
  for (int i = 0; i < 200 && pool.busy_count() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.busy_count(), 2u);
  EXPECT_EQ(pool.spare_count(), 2u);
  release.store(true);
  // Spares free up as the held items finish, before any shutdown.
  for (int i = 0; i < 200 && pool.spare_count() < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.spare_count(), 4u);
  pool.shutdown();
  // thread_count() tracks live threads (the resize contract), so after
  // shutdown every worker has exited and nothing is spare.
  EXPECT_EQ(pool.spare_count(), 0u);
}

TEST(WorkerPoolTest, QueueLengthVisibleWhileWorkersBusy) {
  std::atomic<bool> release{false};
  WorkerPool<int> pool("queued", 1, [&](int&&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  pool.submit(1);
  for (int i = 0; i < 200 && pool.busy_count() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pool.submit(2);
  pool.submit(3);
  EXPECT_EQ(pool.queue_length(), 2u);
  release.store(true);
  pool.shutdown();
  EXPECT_EQ(pool.queue_length(), 0u);
}

TEST(WorkerPoolTest, ShutdownIsIdempotent) {
  WorkerPool<int> pool("idem", 2, [](int&&) {});
  pool.submit(1);
  pool.shutdown();
  pool.shutdown();
  EXPECT_EQ(pool.processed(), 1u);
}

TEST(WorkerPoolTest, WorkRunsOnMultipleThreads) {
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::atomic<int> in_flight{0};
  {
    WorkerPool<int> pool("spread", 4, [&](int&&) {
      ++in_flight;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      std::lock_guard lock(mu);
      ids.insert(std::this_thread::get_id());
    });
    for (int i = 0; i < 16; ++i) pool.submit(i);
    pool.shutdown();
  }
  EXPECT_GE(ids.size(), 2u);
}

TEST(WorkerPoolTest, NameAndThreadCountAccessors) {
  WorkerPool<int> pool("named", 5, [](int&&) {});
  EXPECT_EQ(pool.name(), "named");
  EXPECT_EQ(pool.thread_count(), 5u);
  pool.shutdown();
}

// Regression test for the tspare accounting race: a worker used to increment
// its busy counter only after pop() returned, so there was a window where an
// item had left the queue but the thread was not yet counted busy. During
// that window spare_count() read one too high, which could admit a lengthy
// request into the general pool's reserved headroom. The fix counts the
// thread busy inside the dequeue's critical section, so once the queue is
// observed empty the thread must already be counted.
TEST(WorkerPoolTest, DequeuedItemNeverObservableAsSpareThread) {
  std::counting_semaphore<> gate(0);
  std::atomic<bool> started{false};
  WorkerPool<int> pool("race", 1, [&](int&&) {
    started.store(true);
    gate.acquire();
  });

  constexpr int kIterations = 300;
  for (int i = 0; i < kIterations; ++i) {
    started.store(false);
    pool.submit(i);
    // Spin until the item has left the queue...
    while (pool.queue_length() != 0) {
      std::this_thread::yield();
    }
    // ...at which point the worker must already be accounted busy. Before
    // the fix this intermittently read busy=0 / spare=1.
    EXPECT_EQ(pool.busy_count(), 1u) << "iteration " << i;
    EXPECT_EQ(pool.spare_count(), 0u) << "iteration " << i;
    gate.release();
    while (pool.processed() != static_cast<std::uint64_t>(i) + 1) {
      std::this_thread::yield();
    }
  }
  pool.shutdown();
}

TEST(WorkerPoolTest, RejectPolicyReturnsItemWhenQueueFull) {
  std::counting_semaphore<> gate(0);
  WorkerPool<std::unique_ptr<int>> pool(
      "reject", 1, [&](std::unique_ptr<int>&&) { gate.acquire(); },
      WorkerPool<std::unique_ptr<int>>::ThreadHook{},
      WorkerPool<std::unique_ptr<int>>::ThreadHook{},
      WorkerPoolOptions{/*queue_capacity=*/1, OverflowPolicy::kReject, {}});
  EXPECT_EQ(pool.queue_capacity(), 1u);
  EXPECT_EQ(pool.overflow_policy(), OverflowPolicy::kReject);

  // First item occupies the worker, second fills the queue.
  EXPECT_FALSE(pool.submit(std::make_unique<int>(1)).has_value());
  while (pool.busy_count() != 1) std::this_thread::yield();
  EXPECT_FALSE(pool.submit(std::make_unique<int>(2)).has_value());

  // Third finds the queue full: it must come back intact, not be dropped.
  auto refused = pool.submit(std::make_unique<int>(3));
  ASSERT_TRUE(refused.has_value());
  ASSERT_NE(*refused, nullptr);
  EXPECT_EQ(**refused, 3);
  EXPECT_EQ(pool.rejected(), 1u);

  gate.release(2);
  pool.shutdown();
  EXPECT_EQ(pool.processed(), 2u);
  EXPECT_EQ(pool.rejected(), 1u);
}

TEST(WorkerPoolTest, BlockPolicyParksProducerUntilSpaceFrees) {
  std::counting_semaphore<> gate(0);
  WorkerPool<int> pool(
      "block", 1, [&](int&&) { gate.acquire(); },
      WorkerPool<int>::ThreadHook{}, WorkerPool<int>::ThreadHook{},
      WorkerPoolOptions{/*queue_capacity=*/1, OverflowPolicy::kBlock, {}});

  pool.submit(1);
  while (pool.busy_count() != 1) std::this_thread::yield();
  pool.submit(2);  // fills the queue
  EXPECT_EQ(pool.queue_length(), 1u);

  std::atomic<bool> third_accepted{false};
  std::thread producer([&] {
    EXPECT_FALSE(pool.submit(3).has_value());  // blocks until a slot frees
    third_accepted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(third_accepted.load());  // still parked: queue is full

  gate.release(3);  // worker drains; the blocked producer gets its slot
  producer.join();
  EXPECT_TRUE(third_accepted.load());
  pool.shutdown();
  EXPECT_EQ(pool.processed(), 3u);
  EXPECT_EQ(pool.rejected(), 0u);
}

TEST(WorkerPoolTest, SubmitAfterShutdownReturnsItemBack) {
  WorkerPool<int> pool("closed", 1, [](int&&) {});
  pool.shutdown();
  auto refused = pool.submit(41);
  ASSERT_TRUE(refused.has_value());
  EXPECT_EQ(*refused, 41);
}

TEST(WorkerPoolTest, WorkerSurvivesHandlerException) {
  // Regression: a throwing handler used to escape run() and terminate the
  // worker thread (std::thread + uncaught exception = std::terminate). The
  // barrier must swallow it, count it, fire the hook, and keep the thread
  // serving subsequent items.
  std::atomic<int> hook_calls{0};
  std::atomic<int> processed_ok{0};
  WorkerPoolOptions options;
  options.on_uncaught = [&] { hook_calls.fetch_add(1); };
  WorkerPool<int> pool(
      "throwy", 1,
      [&](int&& item) {
        if (item < 0) throw std::runtime_error("boom");
        processed_ok.fetch_add(1);
      },
      WorkerPool<int>::ThreadHook{}, WorkerPool<int>::ThreadHook{}, options);

  pool.submit(-1);
  pool.submit(-2);
  pool.submit(1);
  pool.shutdown();  // drains the queue before joining
  EXPECT_EQ(pool.uncaught(), 2u);
  EXPECT_EQ(hook_calls.load(), 2);
  EXPECT_EQ(processed_ok.load(), 1);
  EXPECT_EQ(pool.processed(), 3u);  // throwers still count as processed
}

// --- live resize (the utility controller's actuator, DESIGN.md §15) --------

TEST(WorkerPoolResizeTest, GrowSpawnsThreadsAndRunsInitHooks) {
  std::atomic<int> inits{0};
  std::atomic<int> exits{0};
  WorkerPool<int> pool(
      "grow", 2, [](int&&) {}, [&] { ++inits; }, [&] { ++exits; });
  EXPECT_EQ(pool.thread_count(), 2u);
  // Init hooks run inside the worker threads, so give them a beat.
  for (int i = 0; i < 500 && inits.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(inits.load(), 2);

  EXPECT_EQ(pool.resize(5), 5u);
  EXPECT_EQ(pool.thread_count(), 5u);
  EXPECT_EQ(pool.target_thread_count(), 5u);
  // Growth is eager: every new thread runs the init hook immediately.
  for (int i = 0; i < 500 && inits.load() < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(inits.load(), 5);
  pool.shutdown();
  EXPECT_EQ(exits.load(), 5);
}

TEST(WorkerPoolResizeTest, ShrinkRetiresIdleThreadsAndRunsExitHooks) {
  std::atomic<int> exits{0};
  WorkerPool<int> pool(
      "shrink", 6, [](int&&) {}, WorkerPool<int>::ThreadHook{},
      [&] { ++exits; });
  EXPECT_EQ(pool.resize(2), 2u);
  // Idle surplus threads notice the kick and retire without any traffic.
  for (int i = 0; i < 500 && pool.thread_count() > 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.thread_count(), 2u);
  EXPECT_EQ(pool.retired(), 4u);
  for (int i = 0; i < 500 && exits.load() < 4; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(exits.load(), 4);

  // The survivors still serve.
  pool.submit(1);
  pool.shutdown();
  EXPECT_EQ(pool.processed(), 1u);
  EXPECT_EQ(exits.load(), 6);
}

TEST(WorkerPoolResizeTest, ShrinkUnderLoadLosesNoJobs) {
  std::atomic<int> processed{0};
  WorkerPool<int> pool("drain", 8, [&](int&&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ++processed;
  });
  for (int i = 0; i < 200; ++i) pool.submit(i);
  // Shrink mid-drain: retiring threads must finish their current item and
  // the survivors must drain the whole queue — nothing dropped.
  EXPECT_EQ(pool.resize(2), 2u);
  for (int i = 0; i < 100; ++i) pool.submit(1000 + i);
  pool.shutdown();
  EXPECT_EQ(processed.load(), 300);
  EXPECT_EQ(pool.processed(), 300u);
  EXPECT_GE(pool.retired(), 1u);
}

TEST(WorkerPoolResizeTest, RepeatedResizeConvergesAndReapsSlots) {
  std::atomic<int> processed{0};
  WorkerPool<int> pool("churn", 4, [&](int&&) { ++processed; });
  for (int round = 0; round < 10; ++round) {
    pool.resize(round % 2 == 0 ? 1 : 6);
    for (int i = 0; i < 20; ++i) pool.submit(i);
  }
  pool.resize(3);
  for (int i = 0; i < 500 && pool.thread_count() != 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.thread_count(), 3u);
  pool.shutdown();
  EXPECT_EQ(processed.load(), 200);
}

TEST(WorkerPoolResizeTest, ResizeFloorsAtOneThread) {
  WorkerPool<int> pool("floor", 2, [](int&&) {});
  EXPECT_EQ(pool.resize(0), 1u);
  for (int i = 0; i < 500 && pool.thread_count() > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.thread_count(), 1u);
  // A one-thread pool still serves.
  pool.submit(7);
  pool.shutdown();
  EXPECT_EQ(pool.processed(), 1u);
}

TEST(WorkerPoolResizeTest, ResizeAfterShutdownIsANoOp) {
  WorkerPool<int> pool("late", 2, [](int&&) {});
  pool.shutdown();
  EXPECT_EQ(pool.resize(8), 2u);  // returns the unchanged target
}

TEST(WorkerPoolResizeTest, BusyThreadRetiresAfterFinishingItsItem) {
  std::counting_semaphore<> gate(0);
  std::atomic<int> exits{0};
  WorkerPool<int> pool(
      "busy-retire", 2, [&](int&&) { gate.acquire(); },
      WorkerPool<int>::ThreadHook{}, [&] { ++exits; });
  pool.submit(1);
  pool.submit(2);
  while (pool.busy_count() != 2) std::this_thread::yield();

  // Both threads are mid-item; the shrink must not abandon either item.
  pool.resize(1);
  EXPECT_EQ(pool.processed(), 0u);
  gate.release(2);
  // The retiring thread can exit before the surviving one finishes its item,
  // so wait for both conditions, not just the thread count.
  for (int i = 0;
       i < 500 && (pool.thread_count() > 1 || pool.processed() < 2); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.processed(), 2u);
  EXPECT_EQ(pool.retired(), 1u);
  pool.shutdown();
  EXPECT_EQ(exits.load(), 2);
}

}  // namespace
}  // namespace tempest
