#include "src/common/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>

namespace tempest {
namespace {

TEST(WorkerPoolTest, ProcessesAllSubmittedItems) {
  std::atomic<int> sum{0};
  {
    WorkerPool<int> pool("adders", 4, [&](int&& v) { sum += v; });
    for (int i = 1; i <= 100; ++i) pool.submit(i);
    pool.shutdown();
  }
  EXPECT_EQ(sum.load(), 5050);
}

TEST(WorkerPoolTest, ProcessedCounterMatches) {
  WorkerPool<int> pool("count", 2, [](int&&) {});
  for (int i = 0; i < 37; ++i) pool.submit(i);
  pool.shutdown();
  EXPECT_EQ(pool.processed(), 37u);
}

TEST(WorkerPoolTest, ThreadInitAndExitRunOncePerThread) {
  std::atomic<int> inits{0};
  std::atomic<int> exits{0};
  {
    WorkerPool<int> pool(
        "hooks", 3, [](int&&) {}, [&] { ++inits; }, [&] { ++exits; });
    pool.submit(1);
    pool.shutdown();
  }
  EXPECT_EQ(inits.load(), 3);
  EXPECT_EQ(exits.load(), 3);
}

TEST(WorkerPoolTest, SpareCountReflectsBusyThreads) {
  std::atomic<bool> release{false};
  WorkerPool<int> pool("busy", 4, [&](int&&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  EXPECT_EQ(pool.spare_count(), 4u);
  pool.submit(1);
  pool.submit(2);
  // Wait for both to be picked up.
  for (int i = 0; i < 200 && pool.busy_count() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.busy_count(), 2u);
  EXPECT_EQ(pool.spare_count(), 2u);
  release.store(true);
  pool.shutdown();
  EXPECT_EQ(pool.spare_count(), 4u);
}

TEST(WorkerPoolTest, QueueLengthVisibleWhileWorkersBusy) {
  std::atomic<bool> release{false};
  WorkerPool<int> pool("queued", 1, [&](int&&) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  pool.submit(1);
  for (int i = 0; i < 200 && pool.busy_count() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pool.submit(2);
  pool.submit(3);
  EXPECT_EQ(pool.queue_length(), 2u);
  release.store(true);
  pool.shutdown();
  EXPECT_EQ(pool.queue_length(), 0u);
}

TEST(WorkerPoolTest, ShutdownIsIdempotent) {
  WorkerPool<int> pool("idem", 2, [](int&&) {});
  pool.submit(1);
  pool.shutdown();
  pool.shutdown();
  EXPECT_EQ(pool.processed(), 1u);
}

TEST(WorkerPoolTest, WorkRunsOnMultipleThreads) {
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::atomic<int> in_flight{0};
  {
    WorkerPool<int> pool("spread", 4, [&](int&&) {
      ++in_flight;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      std::lock_guard lock(mu);
      ids.insert(std::this_thread::get_id());
    });
    for (int i = 0; i < 16; ++i) pool.submit(i);
    pool.shutdown();
  }
  EXPECT_GE(ids.size(), 2u);
}

TEST(WorkerPoolTest, NameAndThreadCountAccessors) {
  WorkerPool<int> pool("named", 5, [](int&&) {});
  EXPECT_EQ(pool.name(), "named");
  EXPECT_EQ(pool.thread_count(), 5u);
  pool.shutdown();
}

}  // namespace
}  // namespace tempest
