#include "src/common/render_buffer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace tempest {
namespace {

TEST(RenderBufferTest, AppendsAndExposesContents) {
  RenderBuffer buf(64);
  EXPECT_TRUE(buf.empty());
  EXPECT_GE(buf.capacity(), 64u);
  buf.append("hello ");
  buf.str() += "world";
  EXPECT_EQ(buf.view(), "hello world");
  EXPECT_EQ(buf.size(), 11u);
  buf.clear();
  EXPECT_TRUE(buf.empty());
}

TEST(RenderBufferTest, TakeMovesContentsOut) {
  RenderBuffer buf;
  buf.append("payload");
  std::string out = std::move(buf).take();
  EXPECT_EQ(out, "payload");
}

TEST(RenderBufferPoolTest, AcquireReusesReleasedBuffer) {
  RenderBufferPool pool;
  const std::string* backing = nullptr;
  {
    PooledBuffer buf = pool.acquire(100);
    buf->append("first");
    backing = &buf->str();
  }  // destructor returns the buffer
  EXPECT_EQ(pool.free_count(), 1u);

  PooledBuffer again = pool.acquire();
  EXPECT_EQ(&again->str(), backing);  // same buffer came back
  EXPECT_TRUE(again->empty());        // cleared on checkout
  EXPECT_GE(again->capacity(), 5u);   // capacity survived the round trip

  const auto counters = pool.counters();
  EXPECT_EQ(counters.acquires, 2u);
  EXPECT_EQ(counters.allocs, 1u);
  EXPECT_EQ(counters.reuses, 1u);
  EXPECT_EQ(counters.releases, 1u);
}

TEST(RenderBufferPoolTest, ShareKeepsBytesAliveThenReleases) {
  RenderBufferPool pool;
  std::shared_ptr<const std::string> shared;
  {
    PooledBuffer buf = pool.acquire();
    buf->append("shared bytes");
    shared = std::move(buf).share();
  }
  // The handle is gone but the shared reference pins the buffer.
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(*shared, "shared bytes");
  std::shared_ptr<const std::string> copy = shared;  // copyable reference
  shared.reset();
  EXPECT_EQ(pool.free_count(), 0u);
  copy.reset();  // last reference: buffer rejoins the pool
  EXPECT_EQ(pool.free_count(), 1u);
  EXPECT_EQ(pool.counters().releases, 1u);
}

TEST(RenderBufferPoolTest, OversizeBuffersAreDiscardedNotRetained) {
  RenderBufferPool pool(/*max_retained_bytes=*/1024,
                        /*max_free_per_shard=*/64);
  {
    PooledBuffer buf = pool.acquire();
    buf->reserve(4096);  // grows past the retention cap
  }
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.counters().discards, 1u);
}

TEST(RenderBufferPoolTest, MovedFromHandleReleasesNothing) {
  RenderBufferPool pool;
  PooledBuffer a = pool.acquire();
  PooledBuffer b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): testing the state
  EXPECT_TRUE(b);
  EXPECT_EQ(pool.free_count(), 0u);
  b = PooledBuffer();  // assignment releases the held buffer
  EXPECT_EQ(pool.free_count(), 1u);
}

// TSan hammer: producers check buffers out, render into them, convert to
// shared references and hand them to a consumer thread that verifies the
// contents and drops the last reference — so acquire happens on one thread
// and release on another, exactly like worker pools + the epoll reactor.
TEST(RenderBufferPoolTest, CrossThreadReuseHammer) {
  RenderBufferPool pool;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 400;

  struct Item {
    std::shared_ptr<const std::string> body;
    std::string expected;
  };
  std::mutex mu;
  std::condition_variable cv;
  std::condition_variable cv_space;
  std::deque<Item> queue;
  // Bounded: producers wait for the consumer to drain, which guarantees the
  // two sides interleave (and buffers recirculate) even on a single core.
  constexpr std::size_t kQueueCap = 8;
  std::atomic<int> produced{0};
  std::atomic<bool> done{false};
  std::atomic<int> mismatches{0};

  std::thread consumer([&] {
    for (;;) {
      Item item;
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] { return !queue.empty() || done.load(); });
        if (queue.empty()) return;
        item = std::move(queue.front());
        queue.pop_front();
        cv_space.notify_one();
      }
      if (*item.body != item.expected) mismatches.fetch_add(1);
      // item destructs here: the buffer returns to the pool from this thread
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        PooledBuffer buf = pool.acquire(64);
        std::string expected =
            "producer " + std::to_string(p) + " item " + std::to_string(i);
        buf->append(expected);
        Item item{std::move(buf).share(), std::move(expected)};
        {
          std::unique_lock lock(mu);
          cv_space.wait(lock, [&] { return queue.size() < kQueueCap; });
          queue.push_back(std::move(item));
        }
        cv.notify_one();
        produced.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  {
    std::lock_guard lock(mu);
    done.store(true);
  }
  cv.notify_all();
  consumer.join();

  EXPECT_EQ(produced.load(), kProducers * kPerProducer);
  EXPECT_EQ(mismatches.load(), 0);
  const auto counters = pool.counters();
  EXPECT_EQ(counters.acquires,
            static_cast<std::uint64_t>(kProducers * kPerProducer));
  // Cross-thread recycling must actually happen: with 4 producers and a
  // consumer that drops references promptly, the vast majority of acquires
  // are satisfied by reuse rather than fresh allocation.
  EXPECT_GT(counters.reuses, counters.acquires / 2);
  EXPECT_EQ(counters.releases + counters.discards, counters.acquires);
}

}  // namespace
}  // namespace tempest
