#include "src/common/config.h"

#include <gtest/gtest.h>

namespace tempest {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(OptionsTest, EqualsForm) {
  const auto opts = parse({"--clients=200", "--scale=0.02"});
  EXPECT_EQ(opts.get_int("clients", 0), 200);
  EXPECT_DOUBLE_EQ(opts.get_double("scale", 0), 0.02);
}

TEST(OptionsTest, SpaceSeparatedForm) {
  const auto opts = parse({"--seed", "99"});
  EXPECT_EQ(opts.get_int("seed", 0), 99);
}

TEST(OptionsTest, BareFlagIsTrue) {
  const auto opts = parse({"--paper"});
  EXPECT_TRUE(opts.get_bool("paper", false));
  EXPECT_TRUE(opts.has("paper"));
}

TEST(OptionsTest, MissingKeysUseFallbacks) {
  const auto opts = parse({});
  EXPECT_EQ(opts.get_int("nope", 7), 7);
  EXPECT_EQ(opts.get_string("nope", "x"), "x");
  EXPECT_FALSE(opts.get_bool("nope", false));
  EXPECT_FALSE(opts.has("nope"));
}

TEST(OptionsTest, BoolSpellings) {
  EXPECT_TRUE(parse({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=1"}).get_bool("a", false));
  EXPECT_TRUE(parse({"--a=yes"}).get_bool("a", false));
  EXPECT_FALSE(parse({"--a=false"}).get_bool("a", true));
  EXPECT_FALSE(parse({"--a=0"}).get_bool("a", true));
}

TEST(OptionsTest, LastOccurrenceWins) {
  const auto opts = parse({"--n=1", "--n=2"});
  EXPECT_EQ(opts.get_int("n", 0), 2);
}

TEST(OptionsTest, SetOverrides) {
  auto opts = parse({"--n=1"});
  opts.set("n", "5");
  EXPECT_EQ(opts.get_int("n", 0), 5);
}

TEST(OptionsTest, NonFlagArgumentsIgnored) {
  const auto opts = parse({"positional", "--k=v"});
  EXPECT_EQ(opts.get_string("k", ""), "v");
}

}  // namespace
}  // namespace tempest
