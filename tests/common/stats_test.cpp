#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace tempest {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(OnlineStatsTest, MeanMinMax) {
  OnlineStats stats;
  for (double v : {4.0, 2.0, 6.0, 8.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 8.0);
}

TEST(OnlineStatsTest, VarianceMatchesTwoPassFormula) {
  const std::vector<double> values = {1.5, 2.5, 3.5, 9.0, -1.0, 0.25};
  OnlineStats stats;
  double sum = 0;
  for (double v : values) {
    stats.add(v);
    sum += v;
  }
  const double mean = sum / values.size();
  double ss = 0;
  for (double v : values) ss += (v - mean) * (v - mean);
  EXPECT_NEAR(stats.variance(), ss / (values.size() - 1), 1e-12);
}

TEST(OnlineStatsTest, MergeEqualsCombinedStream) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats combined;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10;
    (i % 2 ? a : b).add(v);
    combined.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(OnlineStatsTest, MergeWithEmptySides) {
  OnlineStats a;
  OnlineStats empty;
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  OnlineStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(ConcurrentStatsTest, ThreadedAddsAllCounted) {
  ConcurrentStats stats;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) stats.add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(stats.snapshot().count(), 4000u);
  EXPECT_DOUBLE_EQ(stats.snapshot().mean(), 1.0);
}

TEST(HistogramTest, CountAndMean) {
  Histogram h;
  h.add(0.1);
  h.add(0.3);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_NEAR(h.mean(), 0.2, 1e-12);
}

TEST(HistogramTest, QuantilesAreMonotonic) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(i * 0.001);
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_LE(h.quantile(0.9), h.quantile(0.99));
}

TEST(HistogramTest, QuantileBracketsTrueValue) {
  Histogram h;
  for (int i = 0; i < 10000; ++i) h.add(1.0);  // everything in one bucket
  const double q = h.quantile(0.5);
  EXPECT_GE(q, 1.0);
  EXPECT_LE(q, 2.0);  // geometric bucket upper bound
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a;
  Histogram b;
  a.add(0.5);
  b.add(1.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.mean(), 1.0, 1e-12);
}

TEST(HistogramTest, TracksMaxAcrossAddAndMerge) {
  Histogram a;
  EXPECT_EQ(a.max(), 0.0);  // empty histogram reports zero, not -inf
  a.add(0.5);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
  Histogram b;
  b.add(7.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);
}

TEST(HistogramTest, SummaryClampsPercentilesToObservedMax) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.add(1.0);
  const LatencySummary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
  // Bucket upper bounds overshoot; the summary clamps so p99 <= max.
  EXPECT_DOUBLE_EQ(s.p50, 1.0);
  EXPECT_DOUBLE_EQ(s.p95, 1.0);
  EXPECT_DOUBLE_EQ(s.p99, 1.0);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
}

TEST(HistogramTest, EmptySummaryIsAllZero) {
  const LatencySummary s = Histogram().summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(TimeSeriesTest, RecordsInOrder) {
  TimeSeries series;
  series.record(1.0, 10.0);
  series.record(2.0, 20.0);
  const auto points = series.snapshot();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].t, 1.0);
  EXPECT_EQ(points[1].value, 20.0);
  EXPECT_EQ(series.size(), 2u);
}

TEST(WindowedCounterTest, BinsByTime) {
  WindowedCounter counter(60.0);
  counter.record(5.0);
  counter.record(59.0);
  counter.record(61.0, 3);
  const auto series = counter.series();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].first, 0.0);
  EXPECT_EQ(series[0].second, 2u);
  EXPECT_EQ(series[1].first, 60.0);
  EXPECT_EQ(series[1].second, 3u);
  EXPECT_EQ(counter.total(), 5u);
}

TEST(WindowedCounterTest, ThreadedRecording) {
  WindowedCounter counter(1.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 250; ++i) counter.record(t * 1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.total(), 1000u);
}

}  // namespace
}  // namespace tempest
