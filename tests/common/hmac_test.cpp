#include "src/common/hmac.h"

#include <gtest/gtest.h>

#include <string>

namespace tempest {
namespace {

// --- SHA-256: FIPS 180-4 / NIST CAVP reference vectors -----------------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(hex_digest(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(hex_digest(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(hex_digest(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  // FIPS 180-4 long-message vector; also exercises many compression rounds.
  EXPECT_EQ(hex_digest(sha256(std::string(1000000, 'a'))),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactlyOneBlockOfPadding) {
  // 55 bytes: the largest message whose padding fits in a single block;
  // 56 bytes forces the length into a second block. Both boundaries.
  EXPECT_EQ(hex_digest(sha256(std::string(55, 'x'))),
            "d5e285683cd4efc02d021a5c62014694958901005d6f71e89e0989fac77e4072");
  EXPECT_EQ(hex_digest(sha256(std::string(56, 'x'))),
            "04c26261370ee7541549d16dee320c723e3fd14671e66a099afe0a377c16888e");
}

// --- HMAC-SHA256: RFC 4231 test cases ---------------------------------------

TEST(HmacSha256Test, Rfc4231Case1) {
  const std::string key(20, '\x0b');
  EXPECT_EQ(hmac_sha256_hex(key, "Hi There"),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256Test, Rfc4231Case2) {
  EXPECT_EQ(hmac_sha256_hex("Jefe", "what do ya want for nothing?"),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256Test, Rfc4231Case3) {
  const std::string key(20, '\xaa');
  const std::string msg(50, '\xdd');
  EXPECT_EQ(hmac_sha256_hex(key, msg),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256Test, Rfc4231Case4) {
  std::string key;
  for (int i = 1; i <= 25; ++i) key.push_back(static_cast<char>(i));
  const std::string msg(50, '\xcd');
  EXPECT_EQ(hmac_sha256_hex(key, msg),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256Test, Rfc4231Case6LongKey) {
  // Key longer than the 64-byte block: must be hashed down first.
  const std::string key(131, '\xaa');
  EXPECT_EQ(hmac_sha256_hex(key,
                            "Test Using Larger Than Block-Size Key - Hash "
                            "Key First"),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256Test, Rfc4231Case7LongKeyAndData) {
  const std::string key(131, '\xaa');
  EXPECT_EQ(hmac_sha256_hex(key,
                            "This is a test using a larger than block-size "
                            "key and a larger than block-size data. The key "
                            "needs to be hashed before being used by the "
                            "HMAC algorithm."),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacSha256Test, DistinctKeysDistinctMacs) {
  EXPECT_NE(hmac_sha256_hex("key-a", "msg"), hmac_sha256_hex("key-b", "msg"));
  EXPECT_NE(hmac_sha256_hex("key", "msg-a"), hmac_sha256_hex("key", "msg-b"));
}

// --- constant-time comparison ------------------------------------------------

TEST(ConstantTimeEqualsTest, EqualAndUnequal) {
  EXPECT_TRUE(constant_time_equals("", ""));
  EXPECT_TRUE(constant_time_equals("abcdef", "abcdef"));
  EXPECT_FALSE(constant_time_equals("abcdef", "abcdeg"));
  EXPECT_FALSE(constant_time_equals("abcdef", "Xbcdef"));
}

TEST(ConstantTimeEqualsTest, LengthMismatchIsUnequal) {
  EXPECT_FALSE(constant_time_equals("abc", "abcd"));
  EXPECT_FALSE(constant_time_equals("abcd", "abc"));
  EXPECT_FALSE(constant_time_equals("", "a"));
}

}  // namespace
}  // namespace tempest
