#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace tempest {
namespace {

TEST(RngTest, UniformIntWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_THROW(rng.uniform_int(6, 5), std::invalid_argument);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30)) ++differences;
  }
  EXPECT_GT(differences, 40);
}

TEST(RngTest, UniformRealWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(-1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(5);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(7.0);
  EXPECT_NEAR(sum / kSamples, 7.0, 0.3);
}

TEST(RngTest, NurandWithinRange) {
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.nurand(1023, 1, 30000);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 30000);
  }
}

TEST(RngTest, NurandIsNonUniform) {
  // NURand concentrates mass; the chi-square vs uniform should be large.
  Rng rng(13);
  std::map<std::int64_t, int> buckets;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    buckets[rng.nurand(255, 1, 1000) / 100]++;
  }
  int max_bucket = 0;
  int min_bucket = kSamples;
  for (const auto& [k, n] : buckets) {
    max_bucket = std::max(max_bucket, n);
    min_bucket = std::min(min_bucket, n);
  }
  // A uniform distribution over 10 buckets would give ~2000 each.
  EXPECT_GT(max_bucket - min_bucket, 200);
}

TEST(RngTest, AlnumStringLengthAndCharset) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const std::string s = rng.alnum_string(5, 12);
    EXPECT_GE(s.size(), 5u);
    EXPECT_LE(s.size(), 12u);
    for (char c : s) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c))) << s;
    }
  }
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(17);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[rng.discrete({1.0, 0.0, 9.0})]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 5);
}

TEST(RngTest, DiscreteThrowsOnEmpty) {
  Rng rng(1);
  EXPECT_THROW(rng.discrete({}), std::invalid_argument);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace tempest
