#include "src/common/strutil.h"

#include <gtest/gtest.h>

namespace tempest {
namespace {

TEST(StrUtilTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\r\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(StrUtilTest, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrUtilTest, SplitKeepsOrDropsEmpty) {
  EXPECT_EQ(split("a,,b", ',').size(), 3u);
  EXPECT_EQ(split("a,,b", ',', /*keep_empty=*/false).size(), 2u);
  EXPECT_EQ(split("", ',').size(), 1u);
  EXPECT_EQ(split("", ',', false).size(), 0u);
}

TEST(StrUtilTest, SplitOnce) {
  bool found = false;
  auto [k, v] = split_once("key=value=more", '=', &found);
  EXPECT_TRUE(found);
  EXPECT_EQ(k, "key");
  EXPECT_EQ(v, "value=more");

  auto [whole, empty] = split_once("nodelim", '=', &found);
  EXPECT_FALSE(found);
  EXPECT_EQ(whole, "nodelim");
  EXPECT_EQ(empty, "");
}

TEST(StrUtilTest, CaseConversion) {
  EXPECT_EQ(to_lower("HeLLo-123"), "hello-123");
  EXPECT_EQ(to_upper("HeLLo-123"), "HELLO-123");
}

TEST(StrUtilTest, CaseInsensitiveEquality) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("Content-Length", "content_length"));
  EXPECT_FALSE(iequals("abc", "abcd"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StrUtilTest, UrlDecodeBasics) {
  EXPECT_EQ(url_decode("hello%20world"), "hello world");
  EXPECT_EQ(url_decode("a+b"), "a b");
  EXPECT_EQ(url_decode("a+b", /*plus_as_space=*/false), "a+b");
  EXPECT_EQ(url_decode("%41%42%43"), "ABC");
}

TEST(StrUtilTest, UrlDecodeMalformedPercentIsLiteral) {
  EXPECT_EQ(url_decode("100%"), "100%");
  EXPECT_EQ(url_decode("%zz"), "%zz");
  EXPECT_EQ(url_decode("%4"), "%4");
}

TEST(StrUtilTest, UrlEncodeRoundTrip) {
  const std::string original = "a b&c=d/é?#";
  EXPECT_EQ(url_decode(url_encode(original)), original);
}

TEST(StrUtilTest, UrlEncodePreservesUnreserved) {
  EXPECT_EQ(url_encode("AZaz09-_.~"), "AZaz09-_.~");
  EXPECT_EQ(url_encode(" "), "+");
  EXPECT_EQ(url_encode("&"), "%26");
}

TEST(StrUtilTest, HtmlEscape) {
  EXPECT_EQ(html_escape("<b>&\"'</b>"),
            "&lt;b&gt;&amp;&quot;&#x27;&lt;/b&gt;");
  EXPECT_EQ(html_escape("plain"), "plain");
}

TEST(StrUtilTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_FALSE(ends_with("ar", "bar"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_TRUE(ends_with("x", ""));
}

}  // namespace
}  // namespace tempest
