#include "src/common/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

namespace tempest {
namespace {

TEST(MpmcQueueTest, FifoOrder) {
  MpmcQueue<int> queue;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(queue.push(int{i}));
  for (int i = 0; i < 10; ++i) {
    auto v = queue.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(MpmcQueueTest, SizeTracksContents) {
  MpmcQueue<int> queue;
  EXPECT_TRUE(queue.empty());
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(queue.size(), 2u);
  queue.pop();
  EXPECT_EQ(queue.size(), 1u);
}

TEST(MpmcQueueTest, TryPopOnEmptyReturnsNullopt) {
  MpmcQueue<int> queue;
  EXPECT_FALSE(queue.try_pop().has_value());
}

TEST(MpmcQueueTest, CloseDrainsRemainingItems) {
  MpmcQueue<int> queue;
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_FALSE(queue.push(3));
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(MpmcQueueTest, PopBlocksUntilPush) {
  MpmcQueue<int> queue;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.push(42);
  });
  EXPECT_EQ(queue.pop(), 42);
  producer.join();
}

TEST(MpmcQueueTest, CloseWakesBlockedConsumers) {
  MpmcQueue<int> queue;
  std::atomic<int> finished{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&] {
      while (queue.pop().has_value()) {
      }
      ++finished;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(finished.load(), 4);
}

TEST(MpmcQueueTest, BoundedTryPushFailsWhenFull) {
  MpmcQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  queue.pop();
  EXPECT_TRUE(queue.try_push(3));
}

TEST(MpmcQueueTest, BoundedPushBlocksUntilSpace) {
  MpmcQueue<int> queue(1);
  queue.push(1);
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    queue.pop();
  });
  EXPECT_TRUE(queue.push(2));  // must wait for the pop
  consumer.join();
  EXPECT_EQ(queue.pop(), 2);
}

TEST(MpmcQueueTest, ManyProducersManyConsumersDeliverEverythingOnce) {
  MpmcQueue<int> queue;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::mutex seen_mu;
  std::multiset<int> seen;

  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      while (auto v = queue.pop()) {
        std::lock_guard lock(seen_mu);
        seen.insert(*v);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.push(p * kPerProducer + i);
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  for (int v = 0; v < kProducers * kPerProducer; ++v) {
    EXPECT_EQ(seen.count(v), 1u) << v;
  }
}

TEST(MpmcQueueTest, MoveOnlyTypesSupported) {
  MpmcQueue<std::unique_ptr<int>> queue;
  queue.push(std::make_unique<int>(7));
  auto v = queue.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

TEST(MpmcQueueTest, TryPushLeavesRejectedItemIntact) {
  MpmcQueue<std::unique_ptr<int>> queue(1);
  auto first = std::make_unique<int>(1);
  auto second = std::make_unique<int>(2);
  EXPECT_TRUE(queue.try_push(std::move(first)));
  // The refused item must not be moved from: the caller still owns it and
  // needs it to answer the request it is about to shed.
  EXPECT_FALSE(queue.try_push(std::move(second)));
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(*second, 2);
  queue.close();
  EXPECT_FALSE(queue.try_push(std::move(second)));
  ASSERT_NE(second, nullptr);  // closed-queue refusal keeps it intact too
}

TEST(MpmcQueueTest, PopCallbackRunsBeforeSizeShrinkIsObservable) {
  MpmcQueue<int> queue;
  queue.push(5);
  bool taken = false;
  auto v = queue.pop([&] {
    taken = true;
    // Still inside the queue's critical section here: the item is off the
    // deque but no other thread can observe size() until we return.
  });
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5);
  EXPECT_TRUE(taken);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(MpmcQueueTest, BoundedBlockingNeverExceedsCapacityUnderContention) {
  constexpr std::size_t kCapacity = 4;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  MpmcQueue<int> queue(kCapacity);
  std::atomic<bool> overflow_seen{false};
  std::atomic<int> consumed{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto v = queue.pop()) {
        if (queue.size() > kCapacity) overflow_seen.store(true);
        ++consumed;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.push(p * kPerProducer + i));
        if (queue.size() > kCapacity) overflow_seen.store(true);
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  EXPECT_FALSE(overflow_seen.load());
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
}

TEST(MpmcQueueTest, BoundedRejectingDeliversExactlyTheAcceptedItems) {
  constexpr std::size_t kCapacity = 2;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  MpmcQueue<int> queue(kCapacity);
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::atomic<int> consumed{0};
  std::atomic<bool> overflow_seen{false};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto v = queue.pop()) {
        if (queue.size() > kCapacity) overflow_seen.store(true);
        ++consumed;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (queue.try_push(p * kPerProducer + i)) {
          ++accepted;
        } else {
          ++rejected;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  EXPECT_FALSE(overflow_seen.load());
  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
  // Every accepted item reaches a consumer; rejected ones never do.
  EXPECT_EQ(consumed.load(), accepted.load());
  EXPECT_GT(accepted.load(), 0);
}

}  // namespace
}  // namespace tempest
