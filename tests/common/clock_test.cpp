#include "src/common/clock.h"

#include <gtest/gtest.h>

#include <thread>

namespace tempest {
namespace {

class ClockTest : public ::testing::Test {
 protected:
  void TearDown() override { TimeScale::set(0.005); }
};

TEST_F(ClockTest, ScaleRoundTrips) {
  TimeScale::set(0.25);
  EXPECT_DOUBLE_EQ(TimeScale::get(), 0.25);
}

TEST_F(ClockTest, ToWallScalesPaperSeconds) {
  TimeScale::set(0.5);
  EXPECT_EQ(to_wall(2.0), std::chrono::nanoseconds(1'000'000'000));
  EXPECT_EQ(to_wall(0.0), std::chrono::nanoseconds(0));
}

TEST_F(ClockTest, ToPaperInvertsToWall) {
  TimeScale::set(0.01);
  const double paper = 123.456;
  EXPECT_NEAR(to_paper(to_wall(paper)), paper, 1e-6);
}

TEST_F(ClockTest, NegativeSleepIsNoOp) {
  TimeScale::set(1.0);
  const auto start = WallClock::now();
  paper_sleep_for(-5.0);
  EXPECT_LT(std::chrono::duration<double>(WallClock::now() - start).count(),
            0.05);
}

TEST_F(ClockTest, SleepTakesAtLeastScaledDuration) {
  TimeScale::set(0.001);  // 1 paper-s = 1 ms wall
  const auto start = WallClock::now();
  paper_sleep_for(10.0);  // 10 ms wall
  const double wall =
      std::chrono::duration<double>(WallClock::now() - start).count();
  EXPECT_GE(wall, 0.009);
}

TEST_F(ClockTest, PaperNowIsMonotonic) {
  const double a = paper_now();
  const double b = paper_now();
  EXPECT_LE(a, b);
}

TEST_F(ClockTest, StopwatchMeasuresPaperTime) {
  TimeScale::set(0.001);
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(watch.elapsed_paper(), 4.0);
  EXPECT_GE(watch.elapsed_wall_seconds(), 0.004);
  watch.restart();
  EXPECT_LT(watch.elapsed_paper(), 2.0);
}

TEST_F(ClockTest, ZeroScaleDoesNotDivideByZero) {
  TimeScale::set(0.0);
  EXPECT_EQ(to_paper(std::chrono::seconds(1)), 0.0);
}

}  // namespace
}  // namespace tempest
