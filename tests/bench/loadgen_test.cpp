// Open-loop load harness: schedule determinism, histogram accuracy, and the
// coordinated-omission proof — a server stall must surface in the recorded
// latencies even though the stalled requests were *sent* late.
#include "bench/loadgen.h"

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace tempest::bench {
namespace {

// --- schedule ----------------------------------------------------------------

TEST(ScheduleTest, FixedIntervalIsExact) {
  const auto schedule = make_schedule(5, 100.0, /*poisson=*/false, 1);
  ASSERT_EQ(schedule.size(), 5u);
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_NEAR(schedule[i], static_cast<double>(i + 1) / 100.0, 1e-12);
  }
}

TEST(ScheduleTest, SameSeedReplaysBitForBit) {
  const auto a = make_schedule(1000, 500.0, /*poisson=*/true, 42);
  const auto b = make_schedule(1000, 500.0, /*poisson=*/true, 42);
  EXPECT_EQ(a, b);  // exact double equality: the schedule is pure data
  const auto c = make_schedule(1000, 500.0, /*poisson=*/true, 43);
  EXPECT_NE(a, c);
}

TEST(ScheduleTest, PoissonIsAscendingWithMeanRate) {
  const double rate = 200.0;
  const auto schedule = make_schedule(4000, rate, /*poisson=*/true, 7);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i], schedule[i - 1]);
  }
  // 4000 exponential gaps: the empirical rate lands within a few percent.
  const double empirical = static_cast<double>(schedule.size()) / schedule.back();
  EXPECT_NEAR(empirical, rate, rate * 0.10);
}

// --- histogram ---------------------------------------------------------------

TEST(LoadHistogramTest, SlotRoundTripWithinRelativeError) {
  for (std::uint64_t value : {0ull, 1ull, 100ull, 127ull, 128ull, 1000ull,
                              65536ull, 999999ull, 123456789ull}) {
    const std::uint64_t mid = LoadHistogram::slot_value(
        LoadHistogram::slot(value));
    // <2% relative error by construction (128 subbuckets per octave).
    EXPECT_LE(std::abs(static_cast<double>(mid) - static_cast<double>(value)),
              std::max(1.0, static_cast<double>(value) * 0.02))
        << value;
  }
}

TEST(LoadHistogramTest, QuantilesOfUniformRamp) {
  LoadHistogram histogram;
  for (std::uint64_t v = 1; v <= 10000; ++v) histogram.record(v);
  EXPECT_EQ(histogram.count(), 10000u);
  EXPECT_EQ(histogram.max(), 10000u);
  EXPECT_NEAR(histogram.mean(), 5000.5, 1.0);
  EXPECT_NEAR(static_cast<double>(histogram.value_at_quantile(0.5)), 5000.0,
              5000.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(histogram.value_at_quantile(0.99)), 9900.0,
              9900.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(histogram.value_at_quantile(1.0)), 10000.0,
              10000.0 * 0.02);
  EXPECT_EQ(histogram.value_at_quantile(0.0), histogram.value_at_quantile(0.0));
}

TEST(LoadHistogramTest, MergeIsAdditive) {
  LoadHistogram a, b;
  for (std::uint64_t v = 0; v < 500; ++v) a.record(10);
  for (std::uint64_t v = 0; v < 500; ++v) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_EQ(a.max(), 1000u);
  // Half the mass at ~10, half at ~1000: the median sits on the low mode
  // and p75 on the high one.
  EXPECT_LE(a.value_at_quantile(0.49), 20u);
  EXPECT_GE(a.value_at_quantile(0.75), 900u);
}

TEST(LoadHistogramTest, EmptyHistogramIsZero) {
  LoadHistogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.value_at_quantile(0.99), 0u);
  EXPECT_EQ(histogram.mean(), 0.0);
}

// --- coordinated-omission proof ----------------------------------------------

// Minimal blocking HTTP server, one thread per connection: answers every
// request with a fixed response, but sleeps `stall_ms` once, on request
// number `stall_at` (counted across all connections). With a single client
// connection everything serializes behind that stall — the stall every
// closed-loop generator hides and the open-loop harness must expose.
class StallServer {
 public:
  StallServer(int stall_at, int stall_ms)
      : stall_at_(stall_at), stall_ms_(stall_ms) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    ::listen(listen_fd_, 64);
    thread_ = std::thread([this] { serve(); });
  }

  ~StallServer() {
    stop_.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    thread_.join();
    for (auto& worker : workers_) worker.join();
  }

  std::uint16_t port() const { return port_; }

 private:
  void serve() {
    while (!stop_.load()) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      workers_.emplace_back([this, fd] { handle(fd); });
    }
  }

  void handle(int fd) {
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t end;
      bool dead = false;
      while ((end = buffer.find("\r\n\r\n")) != std::string::npos) {
        buffer.erase(0, end + 4);
        const int served = served_.fetch_add(1) + 1;
        if (served == stall_at_) {
          std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms_));
        }
        static constexpr char kResponse[] =
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
        if (::send(fd, kResponse, sizeof(kResponse) - 1, MSG_NOSIGNAL) < 0) {
          dead = true;
          break;
        }
      }
      if (dead) break;
    }
    ::close(fd);
  }

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  const int stall_at_;
  const int stall_ms_;
  std::atomic<int> served_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::vector<std::thread> workers_;  // only touched by serve() + dtor
};

TEST(OpenLoopTest, CoordinatedOmissionStallIsCharged) {
  // One keep-alive connection, 200 arrivals at 400/s; the server stalls
  // 100 ms on request #50. Every arrival scheduled during the stall waits —
  // and because latency is measured from the SCHEDULED time, that wait is
  // recorded. Service time itself is microseconds, so any p-high latency in
  // the tens of milliseconds can only come from the CO correction.
  StallServer server(/*stall_at=*/50, /*stall_ms=*/100);
  LoadgenConfig config;
  config.port = server.port();
  config.connections = 1;  // serialize: everything queues behind the stall
  config.requests = 200;
  config.rate_rps = 400.0;
  config.poisson = false;  // exact schedule, exact arithmetic
  config.request_for = [](std::size_t, std::uint64_t) {
    return std::string("/");
  };
  const LoadgenResult result = run_open_loop(config);

  ASSERT_EQ(result.completed, 200u);
  EXPECT_EQ(result.errors, 0u);
  // The stall itself: worst request waited ~the full 100 ms.
  EXPECT_GE(result.latency_us.max(), 60000u);
  // ~40 arrivals (100 ms at 400/s) queued behind the stall; the top 5% of
  // 200 samples sit deep inside that stalled cohort.
  EXPECT_GE(result.latency_us.value_at_quantile(0.95), 10000u);
  // The unstalled majority stayed fast: the median must not see the stall.
  EXPECT_LT(result.latency_us.value_at_quantile(0.50), 60000u);
}

TEST(OpenLoopTest, NoStallStaysFast) {
  StallServer server(/*stall_at=*/-1, /*stall_ms=*/0);
  LoadgenConfig config;
  config.port = server.port();
  config.connections = 4;
  config.requests = 400;
  config.rate_rps = 2000.0;
  config.request_for = [](std::size_t, std::uint64_t) {
    return std::string("/");
  };
  const LoadgenResult result = run_open_loop(config);
  ASSERT_EQ(result.completed, 400u);
  EXPECT_EQ(result.ok, 400u);
  // Loopback + trivial server: even the tail stays well under the 100 ms
  // stall the other test must detect.
  EXPECT_LT(result.latency_us.value_at_quantile(0.99), 50000u);
}

TEST(OpenLoopTest, DeterministicRequestStream) {
  // request_for receives (conn, seq) pairs forming a replayable stream:
  // each connection's seq increments from 0 without gaps.
  StallServer server(/*stall_at=*/-1, /*stall_ms=*/0);
  std::atomic<std::uint64_t> calls{0};
  LoadgenConfig config;
  config.port = server.port();
  config.connections = 3;
  config.requests = 90;
  config.rate_rps = 3000.0;
  config.request_for = [&](std::size_t conn, std::uint64_t seq) {
    calls.fetch_add(1);
    EXPECT_LT(conn, 3u);
    return "/c" + std::to_string(conn) + "/s" + std::to_string(seq);
  };
  const LoadgenResult result = run_open_loop(config);
  EXPECT_EQ(result.completed, 90u);
  EXPECT_EQ(calls.load(), 90u);
}

}  // namespace
}  // namespace tempest::bench
