#!/usr/bin/env bash
# Back-compat alias: the generic runner is tests/run_sanitized.sh; this keeps
# the documented TSan entry point working.
#
# Usage: tests/run_tsan.sh            # thread sanitizer (default)
#        TEMPEST_SANITIZE=address tests/run_tsan.sh
set -euo pipefail
export TEMPEST_SANITIZE="${TEMPEST_SANITIZE:-thread}"
exec "$(dirname "$0")/run_sanitized.sh"
