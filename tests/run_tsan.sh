#!/usr/bin/env bash
# Builds the tree with -fsanitize=thread (or $TEMPEST_SANITIZE) and runs the
# suites that exercise the concurrent core — the bounded MPMC queue, worker
# pools, stage traces, and both server variants — under the sanitizer.
#
# Usage: tests/run_tsan.sh            # thread sanitizer (default)
#        TEMPEST_SANITIZE=address tests/run_tsan.sh
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitizer="${TEMPEST_SANITIZE:-thread}"
build_dir="${BUILD_DIR:-$repo_root/build-$sanitizer-san}"

cmake -B "$build_dir" -S "$repo_root" -DTEMPEST_SANITIZE="$sanitizer" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j --target common_test server_test

# Run the binaries directly (ctest registration only covers built targets,
# and a sanitizer failure must fail the script via the gtest exit code).
"$build_dir/tests/common_test"
"$build_dir/tests/server_test"
