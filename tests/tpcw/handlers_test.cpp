// Direct handler-level tests: each of the 14 pages generates the right data
// and returns the paper's (template, data) pair.
#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/db/pool.h"
#include "src/http/parser.h"
#include "src/server/router.h"
#include "src/tpcw/handlers.h"
#include "src/tpcw/populate.h"
#include "src/tpcw/templates.h"

namespace tempest::tpcw {
namespace {

class HandlersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.00005);
    scale_ = Scale::tiny();
    pop_ = populate_tpcw(db_, scale_);
    state_ = TpcwState::from_population(scale_, pop_);
    register_tpcw_routes(router_, state_);
    pool_ = std::make_unique<db::ConnectionPool>(db_, 2);
    loader_ = make_template_loader();
  }

  void TearDown() override { TimeScale::set(0.005); }

  // Invokes the handler for `url` and requires a TemplateResponse.
  server::TemplateResponse call(const std::string& url) {
    auto request = http::parse_request("GET " + url +
                                       " HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_TRUE(request.has_value()) << url;
    request->uri.query = http::parse_query(request->uri.raw_query);
    auto lease = pool_->acquire();
    server::HandlerContext ctx{*request, lease.get()};
    const std::string path = request->uri.path;
    auto* handler = router_.find(path);
    EXPECT_NE(handler, nullptr) << path;
    server::HandlerResult result = (*handler)(ctx);
    auto* tr = std::get_if<server::TemplateResponse>(&result);
    EXPECT_NE(tr, nullptr) << path << " did not return a template";
    return std::move(*tr);
  }

  // Renders the handler result as the render stage would.
  std::string render(const server::TemplateResponse& tr) {
    return loader_->load(tr.template_name)->render(tr.data, loader_.get());
  }

  db::Database db_;
  Scale scale_;
  PopulationSummary pop_;
  std::shared_ptr<TpcwState> state_;
  server::Router router_;
  std::unique_ptr<db::ConnectionPool> pool_;
  std::shared_ptr<tmpl::MemoryLoader> loader_;
};

TEST_F(HandlersTest, AllRoutesRegistered) {
  // The 14 TPC-W pages plus the authentication pair (/login, /logout).
  EXPECT_EQ(router_.size(), 16u);
  for (const auto& path : tpcw_page_paths()) {
    EXPECT_NE(router_.find(path), nullptr) << path;
  }
  EXPECT_NE(router_.find("/login"), nullptr);
  EXPECT_NE(router_.find("/logout"), nullptr);
}

TEST_F(HandlersTest, EveryPageReturnsUnrenderedTemplateWithData) {
  for (const auto& path : tpcw_page_paths()) {
    const auto tr = call(path + "?c_id=5&i_id=7&subject=ARTS&term=river");
    EXPECT_FALSE(tr.template_name.empty()) << path;
    EXPECT_TRUE(loader_->contains(tr.template_name)) << tr.template_name;
    const std::string html = render(tr);
    EXPECT_NE(html.find("TPC-W"), std::string::npos) << path;
  }
}

TEST_F(HandlersTest, HomeLoadsCustomerAndFivePromotions) {
  const auto tr = call("/home?c_id=3");
  EXPECT_EQ(tr.template_name, "home.html");
  EXPECT_EQ(tr.data.at("c_id").as_int(), 3);
  EXPECT_FALSE(tr.data.at("c_fname").str().empty());
  EXPECT_EQ(tr.data.at("promotions").size(), 5u);
}

TEST_F(HandlersTest, HomeClampsOutOfRangeCustomer) {
  const auto tr = call("/home?c_id=999999");
  const auto id = tr.data.at("c_id").as_int();
  EXPECT_GE(id, 1);
  EXPECT_LE(id, scale_.customers);
}

TEST_F(HandlersTest, ProductDetailIncludesAuthorAndSavings) {
  const auto tr = call("/product_detail?i_id=5");
  EXPECT_EQ(tr.data.at("i_id").as_int(), 5);
  EXPECT_FALSE(tr.data.at("a_lname").str().empty());
  EXPECT_GE(tr.data.at("savings").as_double(), 0.0);
  const std::string html = render(tr);
  EXPECT_NE(html.find("Our price"), std::string::npos);
}

TEST_F(HandlersTest, SearchRequestListsAllSubjects) {
  const auto tr = call("/search_request");
  EXPECT_EQ(tr.data.at("subjects").size(),
            static_cast<std::size_t>(kNumSubjects));
}

TEST_F(HandlersTest, ExecuteSearchByTitleFindsMatches) {
  const auto tr = call("/execute_search?type=title&term=river");
  const auto& results = tr.data.at("results");
  EXPECT_GT(results.size(), 0u);
  EXPECT_LE(results.size(), 50u);
  // Every hit's title contains the term.
  for (const auto& hit : results.as_list()) {
    EXPECT_NE(hit.member("i_title")->str().find("river"), std::string::npos);
  }
}

TEST_F(HandlersTest, ExecuteSearchByAuthor) {
  const auto tr = call("/execute_search?type=author&term=river");
  for (const auto& hit : tr.data.at("results").as_list()) {
    EXPECT_NE(hit.member("a_lname")->str().find("river"), std::string::npos);
  }
}

TEST_F(HandlersTest, NewProductsFiltersBySubjectSortedByDate) {
  const auto tr = call("/new_products?subject=ARTS");
  const auto& books = tr.data.at("books").as_list();
  ASSERT_GT(books.size(), 0u);
  std::int64_t last_date = std::numeric_limits<std::int64_t>::max();
  for (const auto& book : books) {
    const auto date = book.member("i_pub_date")->as_int();
    EXPECT_LE(date, last_date);  // descending
    last_date = date;
  }
}

TEST_F(HandlersTest, BestSellersAggregatesRecentSales) {
  const auto tr = call("/best_sellers?subject=ARTS");
  const auto& books = tr.data.at("books").as_list();
  EXPECT_LE(books.size(), 50u);
  // Totals must be non-increasing.
  double last = 1e18;
  for (const auto& book : books) {
    const double total = book.member("total")->as_double();
    EXPECT_LE(total, last);
    last = total;
    EXPECT_GT(total, 0.0);
  }
}

TEST_F(HandlersTest, ShoppingCartAddThenView) {
  auto add = call("/shopping_cart?c_id=4&i_id=10&qty=2");
  EXPECT_EQ(add.data.at("lines").size(), 1u);
  EXPECT_GT(add.data.at("subtotal").as_double(), 0.0);

  // Adding the same item again merges quantities.
  auto again = call("/shopping_cart?c_id=4&i_id=10&qty=3");
  EXPECT_EQ(again.data.at("lines").size(), 1u);
  const auto& line = again.data.at("lines").as_list()[0];
  EXPECT_EQ(line.member("scl_qty")->as_int(), 5);

  // A different item adds a second line.
  auto more = call("/shopping_cart?c_id=4&i_id=11");
  EXPECT_EQ(more.data.at("lines").size(), 2u);

  // Pure view (no i_id) leaves the cart unchanged.
  auto view = call("/shopping_cart?c_id=4");
  EXPECT_EQ(view.data.at("lines").size(), 2u);
}

TEST_F(HandlersTest, CartsArePerCustomer) {
  call("/shopping_cart?c_id=6&i_id=3");
  const auto other = call("/shopping_cart?c_id=7");
  EXPECT_EQ(other.data.at("lines").size(), 0u);
}

TEST_F(HandlersTest, CustomerRegistrationShowsReturningCustomer) {
  const auto tr = call("/customer_registration?c_id=2");
  EXPECT_TRUE(tr.data.at("returning").truthy());
  EXPECT_EQ(tr.data.at("c_uname").str(), "user2");
}

TEST_F(HandlersTest, BuyRequestComputesTotalsFromCart) {
  call("/shopping_cart?c_id=8&i_id=20&qty=1");
  const auto tr = call("/buy_request?c_id=8");
  const double subtotal = tr.data.at("subtotal").as_double();
  EXPECT_GT(subtotal, 0.0);
  EXPECT_NEAR(tr.data.at("total").as_double(), subtotal * 1.0825, 1e-9);
  EXPECT_FALSE(tr.data.at("co_name").str().empty());
}

TEST_F(HandlersTest, BuyConfirmWritesOrderLinesAndPayment) {
  call("/shopping_cart?c_id=9&i_id=30&qty=2");
  const auto orders_before = db_.table("orders").row_count();
  const auto lines_before = db_.table("order_line").row_count();
  const auto cc_before = db_.table("cc_xacts").row_count();

  const auto tr = call("/buy_confirm?c_id=9");
  EXPECT_EQ(db_.table("orders").row_count(), orders_before + 1);
  EXPECT_EQ(db_.table("order_line").row_count(), lines_before + 1);
  EXPECT_EQ(db_.table("cc_xacts").row_count(), cc_before + 1);
  EXPECT_GT(tr.data.at("o_id").as_int(), scale_.orders);
}

TEST_F(HandlersTest, BuyConfirmWithEmptyCartBuysDefaultItem) {
  const auto orders_before = db_.table("orders").row_count();
  const auto tr = call("/buy_confirm?c_id=12");
  EXPECT_EQ(db_.table("orders").row_count(), orders_before + 1);
  EXPECT_EQ(tr.data.at("lines").size(), 1u);
}

TEST_F(HandlersTest, BuyConfirmDecrementsStock) {
  // Put a known item in a fresh cart and buy it.
  call("/shopping_cart?c_id=14&i_id=25&qty=1");
  const auto& items = db_.table("item");
  const std::size_t pos = items.find_by_pk(db::Value(25));
  const auto stock_col = items.schema().require_column("i_stock");
  const auto before = items.row_at(pos)[stock_col].as_int();
  call("/buy_confirm?c_id=14");
  const auto after = items.row_at(pos)[stock_col].as_int();
  EXPECT_TRUE(after == before - 1 || after == before - 1 + 21) << after;
}

TEST_F(HandlersTest, OrderDisplayShowsMostRecentOrder) {
  call("/shopping_cart?c_id=10&i_id=40");
  const auto confirm = call("/buy_confirm?c_id=10");
  const auto o_id = confirm.data.at("o_id").as_int();
  const auto tr = call("/order_display?c_id=10");
  EXPECT_TRUE(tr.data.at("found").truthy());
  EXPECT_EQ(tr.data.at("o_id").as_int(), o_id);
  EXPECT_GT(tr.data.at("lines").size(), 0u);
}

TEST_F(HandlersTest, OrderInquiryShowsUsername) {
  const auto tr = call("/order_inquiry?c_id=5");
  EXPECT_EQ(tr.data.at("c_uname").str(), "user5");
}

TEST_F(HandlersTest, AdminRequestShowsItem) {
  const auto tr = call("/admin_request?i_id=8");
  EXPECT_EQ(tr.data.at("i_id").as_int(), 8);
  EXPECT_FALSE(tr.data.at("i_title").str().empty());
}

TEST_F(HandlersTest, AdminResponseUpdatesImageAndRelated) {
  const auto tr =
      call("/admin_response?i_id=8&image=/img/image_1.gif&thumbnail=/img/thumb_1.gif");
  const auto& items = db_.table("item");
  const std::size_t pos = items.find_by_pk(db::Value(8));
  EXPECT_EQ(items.row_at(pos)[items.schema().require_column("i_image")]
                .as_string(),
            "/img/image_1.gif");
  // i_related1 recomputed from recent order lines.
  const auto related =
      items.row_at(pos)[items.schema().require_column("i_related1")].as_int();
  EXPECT_GE(related, 1);
  EXPECT_EQ(tr.data.at("i_image").str(), "/img/image_1.gif");
}

TEST_F(HandlersTest, PageNamesForTables) {
  EXPECT_EQ(tpcw_page_name("/home"), "TPC-W home interaction");
  EXPECT_EQ(tpcw_page_name("/best_sellers"), "TPC-W best sellers");
  EXPECT_EQ(tpcw_page_name("/shopping_cart"),
            "TPC-W shopping cart interaction");
}

}  // namespace
}  // namespace tempest::tpcw
