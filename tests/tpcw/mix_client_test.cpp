// Workload generator: browsing mix, URL synthesis, emulated browsers, and a
// miniature end-to-end experiment.
#include <gtest/gtest.h>

#include <map>

#include "src/common/clock.h"
#include "src/tpcw/experiment.h"
#include "src/tpcw/mix.h"

namespace tempest::tpcw {
namespace {

TEST(MixTest, WeightsSumToOneHundred) {
  double total = 0;
  for (const auto& entry : browsing_mix()) total += entry.weight;
  EXPECT_NEAR(total, 100.0, 1e-9);
  EXPECT_EQ(browsing_mix().size(), 14u);
}

TEST(MixTest, SampledFrequenciesTrackWeights) {
  Rng rng(123);
  std::map<std::string, int> counts;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) counts[sample_page(rng)]++;
  // Home is 29%: expect within a couple points.
  EXPECT_NEAR(counts["/home"] * 100.0 / kSamples, 29.0, 2.0);
  EXPECT_NEAR(counts["/product_detail"] * 100.0 / kSamples, 21.0, 2.0);
  // Rare pages still appear.
  EXPECT_GT(counts["/admin_response"], 0);
  EXPECT_LT(counts["/admin_response"], kSamples / 100);
}

TEST(MixTest, UrlsCarryPageSpecificParameters) {
  Rng rng(5);
  const Scale scale = Scale::tiny();
  EXPECT_NE(build_url("/product_detail", rng, scale, 3).find("i_id="),
            std::string::npos);
  EXPECT_NE(build_url("/new_products", rng, scale, 3).find("subject="),
            std::string::npos);
  EXPECT_NE(build_url("/execute_search", rng, scale, 3).find("term="),
            std::string::npos);
  const std::string home = build_url("/home", rng, scale, 3);
  EXPECT_NE(home.find("c_id=3"), std::string::npos);
}

TEST(MixTest, ItemIdsStayInRange) {
  Rng rng(9);
  const Scale scale = Scale::tiny();
  for (int i = 0; i < 200; ++i) {
    const std::string url = build_url("/product_detail", rng, scale, 1);
    const auto pos = url.find("i_id=");
    const long id = std::strtol(url.c_str() + pos + 5, nullptr, 10);
    EXPECT_GE(id, 1);
    EXPECT_LE(id, scale.items);
  }
}

TEST(MixTest, EmbeddedImagesIncludeChromeAndThumbnails) {
  Rng rng(2);
  const auto images = embedded_images("/home", rng);
  EXPECT_GE(images.size(), 12u);
  EXPECT_EQ(images[0], "/img/banner.gif");
  int thumbs = 0;
  for (const auto& img : images) {
    if (img.find("/img/thumb_") == 0) ++thumbs;
  }
  EXPECT_GE(thumbs, 4);
}

TEST(ExperimentTest, MiniRunProducesAllArtifacts) {
  TimeScale::set(0.002);
  ExperimentConfig config;
  config.staged = true;
  config.scale = Scale::tiny();
  config.clients = 24;
  config.ramp_paper_s = 5;
  config.measure_paper_s = 40;
  config.server.db_connections = 10;
  config.server.baseline_threads = 10;
  config.server.header_threads = 2;
  config.server.static_threads = 2;
  config.server.general_threads = 8;
  config.server.lengthy_threads = 2;
  config.server.render_threads = 3;
  config.server.treserve_min = 2;

  const auto results = run_experiment(config);
  TimeScale::set(0.005);

  EXPECT_GT(results.client_interactions, 20u);
  EXPECT_EQ(results.client_errors, 0u);
  EXPECT_FALSE(results.client_page_stats.empty());
  EXPECT_GT(results.server_completed_total, results.client_interactions);
  EXPECT_FALSE(results.queue_series.empty());
  EXPECT_TRUE(results.queue_series.count("general"));
  EXPECT_TRUE(results.queue_series.count("lengthy"));
  EXPECT_FALSE(results.tspare_series.empty());
  EXPECT_FALSE(results.treserve_series.empty());
  EXPECT_FALSE(results.overall_throughput().empty());
  EXPECT_GE(results.connection_idle_while_held_fraction, 0.0);
  EXPECT_LE(results.connection_idle_while_held_fraction, 1.0);
}

TEST(ExperimentTest, BaselineVariantRunsToo) {
  TimeScale::set(0.002);
  ExperimentConfig config;
  config.staged = false;
  config.scale = Scale::tiny();
  config.clients = 12;
  config.ramp_paper_s = 5;
  config.measure_paper_s = 25;
  config.server.db_connections = 8;
  config.server.baseline_threads = 8;

  const auto results = run_experiment(config);
  TimeScale::set(0.005);

  EXPECT_GT(results.client_interactions, 5u);
  EXPECT_EQ(results.client_errors, 0u);
  // The baseline samples its single queue under the name "dynamic".
  EXPECT_TRUE(results.queue_series.count("dynamic"));
  // No controller on the baseline.
  EXPECT_TRUE(results.tspare_series.empty());
}

TEST(ExperimentTest, MeasurementWindowExcludesRamp) {
  TimeScale::set(0.002);
  ExperimentConfig config;
  config.staged = true;
  config.scale = Scale::tiny();
  config.clients = 8;
  config.ramp_paper_s = 30;
  config.measure_paper_s = 1;  // nearly everything lands in the ramp
  config.server.db_connections = 8;
  config.server.baseline_threads = 8;
  config.server.general_threads = 6;
  config.server.lengthy_threads = 2;

  const auto results = run_experiment(config);
  TimeScale::set(0.005);
  // Few-to-no interactions within the tiny window; far fewer than the ~8*30/9
  // the ramp produced.
  EXPECT_LT(results.client_interactions, 30u);
}

TEST(ExperimentTest, PaperShapeUsesPaperParameters) {
  const auto config = ExperimentConfig::paper_shape(true);
  EXPECT_EQ(config.clients, 400u);
  EXPECT_DOUBLE_EQ(config.measure_paper_s, 3000.0);
  EXPECT_DOUBLE_EQ(config.ramp_paper_s, 300.0);
  EXPECT_TRUE(config.staged);
}

}  // namespace
}  // namespace tempest::tpcw
