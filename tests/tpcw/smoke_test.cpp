// End-to-end smoke: populated TPC-W app served by both server variants.
#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/db/database.h"
#include "src/server/baseline_server.h"
#include "src/server/staged_server.h"
#include "src/server/transport.h"
#include "src/tpcw/handlers.h"
#include "src/tpcw/populate.h"

namespace tempest {
namespace {

using tpcw::Scale;

class SmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.0001);  // keep simulated service times tiny
    scale_ = Scale::tiny();
    pop_ = tpcw::populate_tpcw(db_, scale_);
    state_ = tpcw::TpcwState::from_population(scale_, pop_);
    app_ = tpcw::make_tpcw_application(state_);
    config_.db_connections = 8;
    config_.baseline_threads = 8;
    config_.header_threads = 2;
    config_.static_threads = 2;
    config_.general_threads = 6;
    config_.lengthy_threads = 2;
    config_.render_threads = 2;
  }

  static std::string get(server::WebServer& server, const std::string& url) {
    server::InProcClient client(server);
    return client.roundtrip("GET " + url + " HTTP/1.1\r\nHost: x\r\n\r\n");
  }

  db::Database db_;
  Scale scale_;
  tpcw::PopulationSummary pop_;
  std::shared_ptr<tpcw::TpcwState> state_;
  std::shared_ptr<const server::Application> app_;
  server::ServerConfig config_;
};

TEST_F(SmokeTest, StagedServerServesAllFourteenPages) {
  server::StagedServer server(config_, app_, db_);
  for (const std::string& path : tpcw::tpcw_page_paths()) {
    const std::string response = get(server, path + "?c_id=3&i_id=5");
    EXPECT_TRUE(response.find("HTTP/1.1 200") == 0)
        << path << " -> " << response.substr(0, 200);
    EXPECT_NE(response.find("TPC-W"), std::string::npos) << path;
    EXPECT_NE(response.find("Content-Length:"), std::string::npos) << path;
  }
  server.shutdown();
}

TEST_F(SmokeTest, BaselineServerServesAllFourteenPages) {
  server::BaselineServer server(config_, app_, db_);
  for (const std::string& path : tpcw::tpcw_page_paths()) {
    const std::string response = get(server, path + "?c_id=3&i_id=5");
    EXPECT_TRUE(response.find("HTTP/1.1 200") == 0)
        << path << " -> " << response.substr(0, 200);
  }
  server.shutdown();
}

TEST_F(SmokeTest, StaticImagesAreServedByBothServers) {
  server::StagedServer staged(config_, app_, db_);
  server::BaselineServer baseline(config_, app_, db_);
  for (auto* server :
       std::initializer_list<server::WebServer*>{&staged, &baseline}) {
    const std::string response = get(*server, "/img/banner.gif");
    EXPECT_TRUE(response.find("HTTP/1.1 200") == 0);
    EXPECT_NE(response.find("image/gif"), std::string::npos);
  }
}

TEST_F(SmokeTest, UnknownPathsReturn404) {
  server::StagedServer server(config_, app_, db_);
  EXPECT_TRUE(get(server, "/nope").find("HTTP/1.1 404") == 0);
  EXPECT_TRUE(get(server, "/img/nope.gif").find("HTTP/1.1 404") == 0);
}

TEST_F(SmokeTest, HomePageRendersCustomerAndPromotions) {
  server::StagedServer server(config_, app_, db_);
  const std::string response = get(server, "/home?c_id=7");
  EXPECT_NE(response.find("Welcome back"), std::string::npos);
  EXPECT_NE(response.find("/img/thumb_"), std::string::npos);
}

TEST_F(SmokeTest, BuyConfirmCreatesAnOrder) {
  server::StagedServer server(config_, app_, db_);
  const auto orders_before = db_.table("orders").row_count();
  const std::string add = get(server, "/shopping_cart?c_id=5&i_id=9&qty=2");
  EXPECT_NE(add.find("HTTP/1.1 200"), std::string::npos);
  const std::string response = get(server, "/buy_confirm?c_id=5");
  EXPECT_NE(response.find("Thank you for your order"), std::string::npos);
  EXPECT_EQ(db_.table("orders").row_count(), orders_before + 1);
}

}  // namespace
}  // namespace tempest
