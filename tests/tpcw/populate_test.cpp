#include <gtest/gtest.h>

#include "src/tpcw/populate.h"

namespace tempest::tpcw {
namespace {

TEST(PopulateTest, CardinalitiesMatchScale) {
  db::Database db;
  const Scale scale = Scale::tiny();
  const auto summary = populate_tpcw(db, scale);
  EXPECT_EQ(summary.items, scale.items);
  EXPECT_EQ(summary.authors, scale.authors());
  EXPECT_EQ(summary.customers, scale.customers);
  EXPECT_EQ(summary.orders, scale.orders);
  EXPECT_EQ(summary.countries, 92);
  EXPECT_EQ(summary.carts, scale.customers);
  EXPECT_EQ(db.table("item").row_count(),
            static_cast<std::size_t>(scale.items));
  EXPECT_EQ(db.table("customer").row_count(),
            static_cast<std::size_t>(scale.customers));
  EXPECT_EQ(db.table("order_line").row_count(),
            static_cast<std::size_t>(summary.order_lines));
}

TEST(PopulateTest, OrderLinesBetweenOneAndThreePerOrder) {
  db::Database db;
  const Scale scale = Scale::tiny();
  const auto summary = populate_tpcw(db, scale);
  EXPECT_GE(summary.order_lines, scale.orders);
  EXPECT_LE(summary.order_lines, scale.orders * 3);
}

TEST(PopulateTest, DeterministicForSameSeed) {
  db::Database a;
  db::Database b;
  populate_tpcw(a, Scale::tiny(), 7);
  populate_tpcw(b, Scale::tiny(), 7);
  const auto& row_a = a.table("item").row_at(10);
  const auto& row_b = b.table("item").row_at(10);
  EXPECT_EQ(row_a[1].as_string(), row_b[1].as_string());  // i_title
}

TEST(PopulateTest, DifferentSeedsDiffer) {
  db::Database a;
  db::Database b;
  populate_tpcw(a, Scale::tiny(), 7);
  populate_tpcw(b, Scale::tiny(), 8);
  int differing = 0;
  for (std::size_t i = 0; i < 20; ++i) {
    if (a.table("item").row_at(i)[1].as_string() !=
        b.table("item").row_at(i)[1].as_string()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 10);
}

TEST(PopulateTest, ForeignKeysResolve) {
  db::Database db;
  const Scale scale = Scale::tiny();
  populate_tpcw(db, scale);
  const auto& items = db.table("item");
  const auto& authors = db.table("author");
  for (std::size_t i = 0; i < items.row_count(); i += 37) {
    const auto author_pos = authors.find_by_pk(items.row_at(i)[2]);  // i_a_id
    EXPECT_NE(author_pos, db::Table::kNotFound);
  }
  const auto& orders = db.table("orders");
  const auto& customers = db.table("customer");
  for (std::size_t i = 0; i < orders.row_count(); i += 17) {
    EXPECT_NE(customers.find_by_pk(orders.row_at(i)[1]),
              db::Table::kNotFound);  // o_c_id
  }
}

TEST(PopulateTest, SubjectsDrawnFromCatalog) {
  db::Database db;
  populate_tpcw(db, Scale::tiny());
  const auto& items = db.table("item");
  const std::size_t subject_col = items.schema().require_column("i_subject");
  for (std::size_t i = 0; i < items.row_count(); i += 11) {
    const std::string subject = items.row_at(i)[subject_col].as_string();
    bool known = false;
    for (int s = 0; s < kNumSubjects; ++s) {
      if (subject == subject_name(s)) {
        known = true;
        break;
      }
    }
    EXPECT_TRUE(known) << subject;
  }
}

TEST(PopulateTest, NextIdsFollowPopulatedRanges) {
  db::Database db;
  const Scale scale = Scale::tiny();
  const auto summary = populate_tpcw(db, scale);
  EXPECT_EQ(summary.next_order_id, scale.orders + 1);
}

TEST(SchemaTest, SubjectNamesWrapAround) {
  EXPECT_STREQ(subject_name(0), subject_name(kNumSubjects));
  EXPECT_STREQ(subject_name(-1), subject_name(kNumSubjects - 1));
}

TEST(SchemaTest, LatencyModelNormalizesWithScale) {
  const auto paper = latency_model_for(Scale::paper());
  const auto bench = latency_model_for(Scale::bench());
  // 10x smaller population -> 10x larger per-row cost.
  EXPECT_NEAR(bench.per_row_scanned / paper.per_row_scanned, 10.0, 1e-9);
  EXPECT_NEAR(bench.per_row_probed / paper.per_row_probed, 10.0, 1e-9);
}

TEST(SchemaTest, HotColumnsDeliberatelyUnindexed) {
  db::Database db;
  create_tpcw_tables(db);
  const auto& item = db.table("item");
  EXPECT_FALSE(item.has_index_on(item.schema().require_column("i_subject")));
  EXPECT_FALSE(item.has_index_on(item.schema().require_column("i_a_id")));
  EXPECT_TRUE(item.has_index_on(item.schema().require_column("i_id")));
  const auto& ol = db.table("order_line");
  EXPECT_TRUE(ol.has_index_on(ol.schema().require_column("ol_o_id")));
  EXPECT_FALSE(ol.has_index_on(ol.schema().require_column("ol_i_id")));
}

}  // namespace
}  // namespace tempest::tpcw
