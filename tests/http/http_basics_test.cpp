// Methods, statuses, headers, MIME types.
#include <gtest/gtest.h>

#include "src/http/headers.h"
#include "src/http/method.h"
#include "src/http/mime.h"
#include "src/http/status.h"

namespace tempest::http {
namespace {

TEST(MethodTest, ParseKnownMethods) {
  EXPECT_EQ(parse_method("GET"), Method::kGet);
  EXPECT_EQ(parse_method("HEAD"), Method::kHead);
  EXPECT_EQ(parse_method("POST"), Method::kPost);
  EXPECT_EQ(parse_method("PUT"), Method::kPut);
  EXPECT_EQ(parse_method("DELETE"), Method::kDelete);
  EXPECT_EQ(parse_method("OPTIONS"), Method::kOptions);
}

TEST(MethodTest, RejectsUnknownAndLowercase) {
  EXPECT_FALSE(parse_method("get").has_value());
  EXPECT_FALSE(parse_method("FETCH").has_value());
  EXPECT_FALSE(parse_method("").has_value());
}

TEST(MethodTest, RoundTripsToString) {
  for (Method m : {Method::kGet, Method::kHead, Method::kPost, Method::kPut,
                   Method::kDelete, Method::kOptions}) {
    EXPECT_EQ(parse_method(to_string(m)), m);
  }
}

TEST(StatusTest, CodesAndReasons) {
  EXPECT_EQ(status_code(Status::kOk), 200);
  EXPECT_EQ(status_code(Status::kNotFound), 404);
  EXPECT_EQ(reason_phrase(Status::kOk), "OK");
  EXPECT_EQ(reason_phrase(Status::kInternalServerError),
            "Internal Server Error");
  EXPECT_EQ(reason_phrase(Status::kServiceUnavailable), "Service Unavailable");
}

TEST(HeaderMapTest, CaseInsensitiveGet) {
  HeaderMap headers;
  headers.add("Content-Type", "text/html");
  EXPECT_EQ(headers.get("content-type"), "text/html");
  EXPECT_EQ(headers.get("CONTENT-TYPE"), "text/html");
  EXPECT_FALSE(headers.get("content_type").has_value());
}

TEST(HeaderMapTest, FirstValueWinsOnGet) {
  HeaderMap headers;
  headers.add("Accept", "text/html");
  headers.add("Accept", "image/gif");
  EXPECT_EQ(headers.get("accept"), "text/html");
  EXPECT_EQ(headers.get_all("Accept").size(), 2u);
}

TEST(HeaderMapTest, SetReplacesAll) {
  HeaderMap headers;
  headers.add("X", "1");
  headers.add("x", "2");
  headers.set("X", "3");
  EXPECT_EQ(headers.get_all("x").size(), 1u);
  EXPECT_EQ(headers.get("x"), "3");
}

TEST(HeaderMapTest, RemoveAndContains) {
  HeaderMap headers;
  headers.add("A", "1");
  EXPECT_TRUE(headers.contains("a"));
  headers.remove("A");
  EXPECT_FALSE(headers.contains("a"));
  EXPECT_TRUE(headers.empty());
}

TEST(HeaderMapTest, PreservesInsertionOrder) {
  HeaderMap headers;
  headers.add("B", "1");
  headers.add("A", "2");
  ASSERT_EQ(headers.entries().size(), 2u);
  EXPECT_EQ(headers.entries()[0].name, "B");
  EXPECT_EQ(headers.entries()[1].name, "A");
}

TEST(MimeTest, CommonTypes) {
  EXPECT_EQ(mime_type_for_extension("gif"), "image/gif");
  EXPECT_EQ(mime_type_for_extension("html"), "text/html; charset=utf-8");
  EXPECT_EQ(mime_type_for_extension("css"), "text/css");
  EXPECT_EQ(mime_type_for_extension("js"), "application/javascript");
}

TEST(MimeTest, UnknownFallsBackToOctetStream) {
  EXPECT_EQ(mime_type_for_extension("zzz"), "application/octet-stream");
  EXPECT_EQ(mime_type_for_extension(""), "application/octet-stream");
}

}  // namespace
}  // namespace tempest::http
