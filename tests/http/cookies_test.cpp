#include "src/http/cookies.h"

#include <gtest/gtest.h>

#include <string>

#include "src/http/parser.h"

namespace tempest::http {
namespace {

TEST(CookieTest, ParsesSimplePairs) {
  const auto cookies = parse_cookie_header("sid=abc123; theme=dark");
  EXPECT_EQ(cookies.at("sid"), "abc123");
  EXPECT_EQ(cookies.at("theme"), "dark");
}

TEST(CookieTest, TrimsWhitespaceAroundPairs) {
  const auto cookies = parse_cookie_header("  a = 1 ;b=2;  c=3  ");
  EXPECT_EQ(cookies.at("a"), "1");
  EXPECT_EQ(cookies.at("b"), "2");
  EXPECT_EQ(cookies.at("c"), "3");
}

TEST(CookieTest, SkipsMalformedFragments) {
  const auto cookies = parse_cookie_header("novalue; =orphan; ok=1;;");
  EXPECT_EQ(cookies.size(), 1u);
  EXPECT_EQ(cookies.at("ok"), "1");
}

TEST(CookieTest, EmptyHeaderYieldsNothing) {
  EXPECT_TRUE(parse_cookie_header("").empty());
}

TEST(CookieTest, ValueMayContainEquals) {
  const auto cookies = parse_cookie_header("token=a=b=c");
  EXPECT_EQ(cookies.at("token"), "a=b=c");
}

TEST(CookieTest, RequestCookiesMergesMultipleHeadersFirstWins) {
  HeaderMap headers;
  headers.add("Cookie", "a=1");
  headers.add("Cookie", "b=2; a=shadowed");
  const auto cookies = request_cookies(headers);
  // RFC 6265 §5.4 semantics across headers: the first occurrence of a name
  // wins; an appended duplicate cannot override it.
  EXPECT_EQ(cookies.at("a"), "1");
  EXPECT_EQ(cookies.at("b"), "2");
}

// --- adversarial inputs ------------------------------------------------------

TEST(CookieTest, DuplicateNamesFirstOccurrenceWins) {
  const auto cookies = parse_cookie_header("sid=real; sid=forged; sid=again");
  EXPECT_EQ(cookies.size(), 1u);
  EXPECT_EQ(cookies.at("sid"), "real");
}

TEST(CookieTest, NoSpaceSeparators) {
  // Clients are supposed to send "; " but plenty send bare ';'.
  const auto cookies = parse_cookie_header("a=1;b=2;c=3");
  EXPECT_EQ(cookies.size(), 3u);
  EXPECT_EQ(cookies.at("a"), "1");
  EXPECT_EQ(cookies.at("b"), "2");
  EXPECT_EQ(cookies.at("c"), "3");
}

TEST(CookieTest, EmptyValueIsKept) {
  const auto cookies = parse_cookie_header("cleared=; other=x");
  EXPECT_EQ(cookies.at("cleared"), "");
  EXPECT_EQ(cookies.at("other"), "x");
}

TEST(CookieTest, OversizedValueSkippedRestSurvives) {
  const std::string huge(kMaxCookieValueBytes + 1, 'v');
  const auto cookies =
      parse_cookie_header("big=" + huge + "; sid=ok");
  EXPECT_EQ(cookies.count("big"), 0u);
  EXPECT_EQ(cookies.at("sid"), "ok");
}

TEST(CookieTest, OversizedNameSkippedRestSurvives) {
  const std::string huge(kMaxCookieNameBytes + 1, 'n');
  const auto cookies = parse_cookie_header(huge + "=x; sid=ok");
  EXPECT_EQ(cookies.size(), 1u);
  EXPECT_EQ(cookies.at("sid"), "ok");
}

TEST(CookieTest, ValueAtSizeLimitIsKept) {
  const std::string max_value(kMaxCookieValueBytes, 'v');
  const auto cookies = parse_cookie_header("v=" + max_value);
  EXPECT_EQ(cookies.at("v"), max_value);
}

TEST(CookieTest, PairCountCapped) {
  std::string header;
  for (int i = 0; i < 1000; ++i) {
    header += "k" + std::to_string(i) + "=" + std::to_string(i) + ";";
  }
  const auto cookies = parse_cookie_header(header);
  EXPECT_EQ(cookies.size(), kMaxCookiePairs);
  // The earliest pairs are the ones kept.
  EXPECT_EQ(cookies.at("k0"), "0");
}

TEST(CookieTest, PairCountCappedAcrossHeaders) {
  HeaderMap headers;
  for (int h = 0; h < 40; ++h) {
    std::string header;
    for (int i = 0; i < 10; ++i) {
      header += "h" + std::to_string(h) + "k" + std::to_string(i) + "=v;";
    }
    headers.add("Cookie", header);
  }
  EXPECT_LE(request_cookies(headers).size(), kMaxCookiePairs + 10);
}

TEST(CookieTest, CookieHeaderFragmentedAcrossReads) {
  // A Cookie header split at arbitrary byte boundaries (TCP segmentation)
  // must reassemble to the same cookies a single read produces.
  const std::string raw =
      "GET / HTTP/1.1\r\nHost: t\r\nCookie: sid=tok-1; theme=dark\r\n\r\n";
  for (std::size_t split = 1; split < raw.size(); ++split) {
    RequestParser parser;
    EXPECT_EQ(parser.feed(raw.substr(0, split)), split);
    parser.feed(raw.substr(split));
    ASSERT_TRUE(parser.complete()) << "split at " << split;
    const auto cookies = request_cookies(parser.request().headers);
    EXPECT_EQ(cookies.at("sid"), "tok-1") << "split at " << split;
    EXPECT_EQ(cookies.at("theme"), "dark") << "split at " << split;
  }
}

TEST(CookieTest, CookieHeaderSplitIntoSingleBytes) {
  const std::string raw =
      "GET /x HTTP/1.1\r\nCookie: a=1;b=2\r\nHost: t\r\n\r\n";
  RequestParser parser;
  for (char c : raw) parser.feed(std::string_view(&c, 1));
  ASSERT_TRUE(parser.complete());
  const auto cookies = request_cookies(parser.request().headers);
  EXPECT_EQ(cookies.at("a"), "1");
  EXPECT_EQ(cookies.at("b"), "2");
}

TEST(CookieTest, NoCookieHeaderIsEmpty) {
  HeaderMap headers;
  EXPECT_TRUE(request_cookies(headers).empty());
}

TEST(SetCookieTest, MinimalForm) {
  SetCookie cookie;
  cookie.name = "sid";
  cookie.value = "xyz";
  cookie.http_only = false;
  EXPECT_EQ(cookie.to_header_value(), "sid=xyz; Path=/");
}

TEST(SetCookieTest, AllAttributes) {
  SetCookie cookie;
  cookie.name = "sid";
  cookie.value = "xyz";
  cookie.path = "/shop";
  cookie.max_age_seconds = 3600;
  cookie.http_only = true;
  cookie.secure = true;
  EXPECT_EQ(cookie.to_header_value(),
            "sid=xyz; Path=/shop; Max-Age=3600; HttpOnly; Secure");
}

TEST(SetCookieTest, RoundTripsThroughParser) {
  SetCookie cookie;
  cookie.name = "session";
  cookie.value = "tok-42";
  const auto parsed = parse_cookie_header(
      cookie.name + "=" + cookie.value);  // client echoes name=value only
  EXPECT_EQ(parsed.at("session"), "tok-42");
}

}  // namespace
}  // namespace tempest::http
