#include "src/http/cookies.h"

#include <gtest/gtest.h>

namespace tempest::http {
namespace {

TEST(CookieTest, ParsesSimplePairs) {
  const auto cookies = parse_cookie_header("sid=abc123; theme=dark");
  EXPECT_EQ(cookies.at("sid"), "abc123");
  EXPECT_EQ(cookies.at("theme"), "dark");
}

TEST(CookieTest, TrimsWhitespaceAroundPairs) {
  const auto cookies = parse_cookie_header("  a = 1 ;b=2;  c=3  ");
  EXPECT_EQ(cookies.at("a"), "1");
  EXPECT_EQ(cookies.at("b"), "2");
  EXPECT_EQ(cookies.at("c"), "3");
}

TEST(CookieTest, SkipsMalformedFragments) {
  const auto cookies = parse_cookie_header("novalue; =orphan; ok=1;;");
  EXPECT_EQ(cookies.size(), 1u);
  EXPECT_EQ(cookies.at("ok"), "1");
}

TEST(CookieTest, EmptyHeaderYieldsNothing) {
  EXPECT_TRUE(parse_cookie_header("").empty());
}

TEST(CookieTest, ValueMayContainEquals) {
  const auto cookies = parse_cookie_header("token=a=b=c");
  EXPECT_EQ(cookies.at("token"), "a=b=c");
}

TEST(CookieTest, RequestCookiesMergesMultipleHeaders) {
  HeaderMap headers;
  headers.add("Cookie", "a=1");
  headers.add("Cookie", "b=2; a=overridden");
  const auto cookies = request_cookies(headers);
  EXPECT_EQ(cookies.at("a"), "overridden");
  EXPECT_EQ(cookies.at("b"), "2");
}

TEST(CookieTest, NoCookieHeaderIsEmpty) {
  HeaderMap headers;
  EXPECT_TRUE(request_cookies(headers).empty());
}

TEST(SetCookieTest, MinimalForm) {
  SetCookie cookie;
  cookie.name = "sid";
  cookie.value = "xyz";
  cookie.http_only = false;
  EXPECT_EQ(cookie.to_header_value(), "sid=xyz; Path=/");
}

TEST(SetCookieTest, AllAttributes) {
  SetCookie cookie;
  cookie.name = "sid";
  cookie.value = "xyz";
  cookie.path = "/shop";
  cookie.max_age_seconds = 3600;
  cookie.http_only = true;
  cookie.secure = true;
  EXPECT_EQ(cookie.to_header_value(),
            "sid=xyz; Path=/shop; Max-Age=3600; HttpOnly; Secure");
}

TEST(SetCookieTest, RoundTripsThroughParser) {
  SetCookie cookie;
  cookie.name = "session";
  cookie.value = "tok-42";
  const auto parsed = parse_cookie_header(
      cookie.name + "=" + cookie.value);  // client echoes name=value only
  EXPECT_EQ(parsed.at("session"), "tok-42");
}

}  // namespace
}  // namespace tempest::http
