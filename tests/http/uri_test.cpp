#include "src/http/uri.h"

#include <gtest/gtest.h>

namespace tempest::http {
namespace {

TEST(UriTest, PathOnly) {
  const auto uri = parse_target("/home");
  ASSERT_TRUE(uri.has_value());
  EXPECT_EQ(uri->path, "/home");
  EXPECT_TRUE(uri->raw_query.empty());
}

TEST(UriTest, PathWithQuery) {
  const auto uri = parse_target("/homepage?userid=5&popups=no");
  ASSERT_TRUE(uri.has_value());
  EXPECT_EQ(uri->path, "/homepage");
  EXPECT_EQ(uri->raw_query, "userid=5&popups=no");
}

TEST(UriTest, PercentDecodedPath) {
  const auto uri = parse_target("/a%20b/c");
  ASSERT_TRUE(uri.has_value());
  EXPECT_EQ(uri->path, "/a b/c");
}

TEST(UriTest, RejectsNonOriginForm) {
  EXPECT_FALSE(parse_target("").has_value());
  EXPECT_FALSE(parse_target("http://host/x").has_value());
  EXPECT_FALSE(parse_target("relative").has_value());
}

TEST(UriTest, EmptyQueryAfterQuestionMark) {
  const auto uri = parse_target("/p?");
  ASSERT_TRUE(uri.has_value());
  EXPECT_EQ(uri->raw_query, "");
}

TEST(QueryTest, ParsesPairs) {
  const auto q = parse_query("userid=5&popups=no");
  EXPECT_EQ(q.at("userid"), "5");
  EXPECT_EQ(q.at("popups"), "no");
}

TEST(QueryTest, DecodesValues) {
  const auto q = parse_query("term=hello+world&x=a%26b");
  EXPECT_EQ(q.at("term"), "hello world");
  EXPECT_EQ(q.at("x"), "a&b");
}

TEST(QueryTest, ValuelessKeyIsEmpty) {
  const auto q = parse_query("flag&k=v");
  EXPECT_EQ(q.at("flag"), "");
  EXPECT_EQ(q.at("k"), "v");
}

TEST(QueryTest, LastDuplicateWins) {
  const auto q = parse_query("a=1&a=2");
  EXPECT_EQ(q.at("a"), "2");
}

TEST(QueryTest, EmptyString) { EXPECT_TRUE(parse_query("").empty()); }

TEST(ExtensionTest, PaperExamples) {
  // The paper's own discriminator examples (Section 3.2).
  EXPECT_EQ(path_extension("/img/flowers.gif"), "gif");
  EXPECT_EQ(path_extension("/homepage"), "");
}

TEST(ExtensionTest, EdgeCases) {
  EXPECT_EQ(path_extension("/a.b/c"), "");       // dot in a directory only
  EXPECT_EQ(path_extension("/a.b/c.HTML"), "html");
  EXPECT_EQ(path_extension("/x."), "");
  EXPECT_EQ(path_extension("/"), "");
}

}  // namespace
}  // namespace tempest::http
