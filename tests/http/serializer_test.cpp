#include "src/http/serializer.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>

#include "src/http/parser.h"

namespace tempest::http {
namespace {

TEST(SerializerTest, StatusLineAndBody) {
  const Response response = Response::make(Status::kOk, "hello");
  const std::string wire = serialize_response(response);
  EXPECT_EQ(wire.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(wire.find("\r\n\r\nhello"), std::string::npos);
}

TEST(SerializerTest, ContentLengthSetFromBody) {
  // The paper highlights that rendering in its own stage lets the server
  // measure output size and set Content-Length.
  const Response response = Response::make(Status::kOk, std::string(1234, 'x'));
  const std::string wire = serialize_response(response);
  EXPECT_NE(wire.find("Content-Length: 1234\r\n"), std::string::npos);
}

TEST(SerializerTest, ExplicitContentLengthNotOverridden) {
  Response response = Response::make(Status::kOk, "abc");
  response.headers.set("Content-Length", "3");
  const std::string wire = serialize_response(response);
  EXPECT_EQ(wire.find("Content-Length: 3\r\n") != std::string::npos, true);
  // Exactly one occurrence.
  const auto first = wire.find("Content-Length:");
  EXPECT_EQ(wire.find("Content-Length:", first + 1), std::string::npos);
}

TEST(SerializerTest, HeadElidesBodyButKeepsLength) {
  const Response response = Response::make(Status::kOk, "hello");
  const std::string wire = serialize_response(response, /*head_only=*/true);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("\r\n\r\n"), wire.size() - 4);
}

TEST(SerializerTest, DateAndServerHeadersPresent) {
  const std::string wire =
      serialize_response(Response::make(Status::kOk, ""));
  EXPECT_NE(wire.find("Date: "), std::string::npos);
  EXPECT_NE(wire.find("Server: tempest"), std::string::npos);
  EXPECT_NE(wire.find(" GMT\r\n"), std::string::npos);
}

TEST(SerializerTest, ErrorHelpers) {
  EXPECT_EQ(serialize_response(Response::not_found("/x")).find("HTTP/1.1 404"),
            0u);
  EXPECT_EQ(serialize_response(Response::bad_request("b")).find("HTTP/1.1 400"),
            0u);
  EXPECT_EQ(
      serialize_response(Response::server_error("e")).find("HTTP/1.1 500"),
      0u);
}

TEST(SerializerTest, ErrorPagesEscapeDetail) {
  const Response response = Response::not_found("/<script>");
  EXPECT_EQ(response.body.find("<script>"), std::string::npos);
  EXPECT_NE(response.body.find("&lt;script&gt;"), std::string::npos);
}

TEST(SerializerTest, RequestRoundTripsThroughParser) {
  Request request;
  request.method = Method::kGet;
  request.uri.path = "/search";
  request.uri.raw_query = "q=books";
  request.headers.add("Host", "example.com");
  const std::string wire = serialize_request(request);

  const auto reparsed = parse_request(wire);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->uri.path, "/search");
  EXPECT_EQ(reparsed->uri.raw_query, "q=books");
  EXPECT_EQ(reparsed->headers.get("Host"), "example.com");
}

TEST(SerializerTest, RequestBodyGetsContentLength) {
  Request request;
  request.method = Method::kPost;
  request.uri.path = "/submit";
  request.body = "payload";
  const std::string wire = serialize_request(request);
  EXPECT_NE(wire.find("Content-Length: 7\r\n"), std::string::npos);
  const auto reparsed = parse_request(wire);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->body, "payload");
}

TEST(SerializerTest, HeaderBlockMatchesFullSerialization) {
  Response response = Response::make(Status::kOk, "hello body", "text/plain");
  const std::string head =
      serialize_headers(response, response.body_size(),
                        ConnectionDirective::kKeepAlive);
  const std::string full =
      serialize_response(response, /*head_only=*/false,
                         ConnectionDirective::kKeepAlive);
  // The header block is exactly the full wire image minus the entity.
  EXPECT_EQ(head + response.body, full);
  EXPECT_EQ(head.rfind("\r\n\r\n"), head.size() - 4);
  EXPECT_NE(head.find("Content-Length: 10\r\n"), std::string::npos);
  EXPECT_EQ(head.find("hello"), std::string::npos);
}

TEST(SerializerTest, HeaderBlockUsesCallerProvidedBodySize) {
  Response response = Response::make(Status::kOk, "");
  // HEAD handling serializes the true entity length with no body present.
  const std::string head = serialize_headers(response, 12345);
  EXPECT_NE(head.find("Content-Length: 12345\r\n"), std::string::npos);
}

TEST(SerializerTest, SharedBodySerializesLikeOwnedBody) {
  auto body = std::make_shared<const std::string>("shared payload");
  Response shared = Response::from_shared(Status::kOk, body, "text/plain");
  Response owned = Response::make(Status::kOk, "shared payload", "text/plain");
  EXPECT_EQ(shared.body_view(), owned.body_view());
  EXPECT_EQ(shared.body_size(), owned.body_size());
  EXPECT_EQ(serialize_response(shared), serialize_response(owned));
}

TEST(SerializerTest, DateViewMatchesDateNowAndIsCachedPerSecond) {
  const std::string_view view = http_date_view();
  EXPECT_EQ(http_date_now(), view);
  // IMF-fixdate: "Sun, 06 Nov 1994 08:49:37 GMT" — 29 chars, GMT suffix.
  EXPECT_EQ(view.size(), 29u);
  EXPECT_EQ(view.substr(26), "GMT");
  // Within the same wall-clock second the cache returns the same storage.
  EXPECT_EQ(http_date_view().data(), view.data());
}

}  // namespace
}  // namespace tempest::http
