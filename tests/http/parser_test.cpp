#include "src/http/parser.h"

#include <gtest/gtest.h>

namespace tempest::http {
namespace {

constexpr const char* kSimpleGet =
    "GET /homepage?userid=5&popups=no HTTP/1.1\r\n"
    "User-Agent: Mozilla/1.7\r\n"
    "Accept: text/html\r\n"
    "\r\n";

TEST(ParserTest, ParsesThePaperExample) {
  const auto request = parse_request(kSimpleGet);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->method, Method::kGet);
  EXPECT_EQ(request->uri.path, "/homepage");
  EXPECT_EQ(request->uri.raw_query, "userid=5&popups=no");
  EXPECT_EQ(request->version, "HTTP/1.1");
  EXPECT_EQ(request->headers.get("User-Agent"), "Mozilla/1.7");
  EXPECT_EQ(request->headers.get("accept"), "text/html");
}

TEST(ParserTest, RequestLineMilestoneBeforeHeaders) {
  RequestParser parser;
  parser.feed("GET /img/flowers.gif HTTP/1.1\r\n");
  EXPECT_TRUE(parser.request_line_parsed());
  EXPECT_FALSE(parser.complete());
  EXPECT_EQ(parser.request().uri.path, "/img/flowers.gif");
  parser.feed("\r\n");
  EXPECT_TRUE(parser.complete());
}

TEST(ParserTest, ParseRequestLineOnlyHelper) {
  const auto request = parse_request_line_only(kSimpleGet);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->uri.path, "/homepage");
  EXPECT_TRUE(request->headers.empty());
}

TEST(ParserTest, IncrementalByteAtATime) {
  RequestParser parser;
  const std::string raw = kSimpleGet;
  for (char c : raw) parser.feed(std::string_view(&c, 1));
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().headers.size(), 2u);
}

TEST(ParserTest, BodyWithContentLength) {
  const std::string raw =
      "POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  const auto request = parse_request(raw);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->body, "hello");
}

TEST(ParserTest, BodySplitAcrossFeeds) {
  RequestParser parser;
  parser.feed("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhel");
  EXPECT_EQ(parser.state(), RequestParser::State::kBody);
  parser.feed("lo worl");
  EXPECT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().body, "hello worl");
}

TEST(ParserTest, ExcessBytesAfterCompleteNotConsumed) {
  RequestParser parser;
  const std::string two = std::string(kSimpleGet) + "GET /next HTTP/1.1\r\n";
  const std::size_t consumed = parser.feed(two);
  EXPECT_TRUE(parser.complete());
  EXPECT_EQ(consumed, std::string(kSimpleGet).size());
}

TEST(ParserTest, ResetAllowsNextRequest) {
  RequestParser parser;
  parser.feed(kSimpleGet);
  ASSERT_TRUE(parser.complete());
  parser.reset();
  parser.feed("GET /second HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().uri.path, "/second");
}

TEST(ParserTest, ToleratesBareLf) {
  const auto request = parse_request("GET /x HTTP/1.1\nHost: a\n\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->headers.get("Host"), "a");
}

TEST(ParserTest, ToleratesLeadingBlankLines) {
  const auto request = parse_request("\r\n\r\nGET /x HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->uri.path, "/x");
}

TEST(ParserTest, RejectsMalformedRequestLine) {
  std::string error;
  EXPECT_FALSE(parse_request("GARBAGE\r\n\r\n", &error).has_value());
  EXPECT_FALSE(parse_request("GET /x\r\n\r\n").has_value());
  EXPECT_FALSE(parse_request("FETCH /x HTTP/1.1\r\n\r\n").has_value());
  EXPECT_FALSE(parse_request("GET relative HTTP/1.1\r\n\r\n").has_value());
  EXPECT_FALSE(parse_request("GET /x HTTP/2.0\r\n\r\n").has_value());
}

TEST(ParserTest, RejectsMalformedHeader) {
  EXPECT_FALSE(
      parse_request("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n").has_value());
}

TEST(ParserTest, RejectsOversizedBody) {
  const std::string raw =
      "POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n";
  RequestParser parser;
  parser.feed(raw);
  EXPECT_TRUE(parser.failed());
}

TEST(ParserTest, HeaderValuesAreTrimmed) {
  const auto request =
      parse_request("GET /x HTTP/1.1\r\nHost:   spaced   \r\n\r\n");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->headers.get("Host"), "spaced");
}

TEST(ParserTest, IncompleteRequestReportsAsSuch) {
  std::string error;
  EXPECT_FALSE(parse_request("GET /x HTTP/1.1\r\nHost: a\r\n", &error));
  EXPECT_EQ(error, "incomplete request");
}

// --- adversarial fragmentation: how the epoll transport actually delivers
// bytes. Splits land mid-token, mid-CRLF, and across the header/body
// boundary; the parser must produce the same request regardless.

TEST(ParserTest, SplitInsideCrlfPair) {
  RequestParser parser;
  parser.feed("GET /x HTTP/1.1\r");
  EXPECT_EQ(parser.state(), RequestParser::State::kRequestLine);
  parser.feed("\n");
  EXPECT_TRUE(parser.request_line_parsed());
  parser.feed("Host: a\r");
  parser.feed("\n\r");
  EXPECT_FALSE(parser.complete());
  parser.feed("\n");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().headers.get("Host"), "a");
}

TEST(ParserTest, SplitInsideHeaderName) {
  RequestParser parser;
  parser.feed("GET /x HTTP/1.1\r\nUser-Ag");
  parser.feed("ent: tester\r\nAcc");
  parser.feed("ept: text/html\r\n\r\n");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().headers.get("User-Agent"), "tester");
  EXPECT_EQ(parser.request().headers.get("Accept"), "text/html");
}

TEST(ParserTest, EveryPossibleSplitPointYieldsSameRequest) {
  const std::string raw =
      "POST /submit?a=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
  for (std::size_t cut = 1; cut < raw.size(); ++cut) {
    RequestParser parser;
    parser.feed(std::string_view(raw).substr(0, cut));
    EXPECT_FALSE(parser.failed()) << "cut=" << cut;
    parser.feed(std::string_view(raw).substr(cut));
    ASSERT_TRUE(parser.complete()) << "cut=" << cut;
    EXPECT_EQ(parser.request().uri.path, "/submit") << "cut=" << cut;
    EXPECT_EQ(parser.request().body, "body") << "cut=" << cut;
  }
}

TEST(ParserTest, BodySplitByteAtATime) {
  RequestParser parser;
  parser.feed("POST /x HTTP/1.1\r\nContent-Length: 6\r\n\r\n");
  const std::string body = "abcdef";
  for (char c : body) {
    EXPECT_FALSE(parser.complete());
    parser.feed(std::string_view(&c, 1));
  }
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().body, "abcdef");
}

TEST(ParserTest, RejectsOversizedRequestLine) {
  RequestParser parser;
  // Feed an endless request line in chunks; the parser must fail once the
  // kMaxRequestLine cap is crossed, not buffer forever waiting for CRLF.
  const std::string chunk(1024, 'a');
  parser.feed("GET /");
  for (int i = 0; i < 10 && !parser.failed(); ++i) parser.feed(chunk);
  EXPECT_TRUE(parser.failed());
}

TEST(ParserTest, RejectsOversizedHeaderBlock) {
  RequestParser parser;
  parser.feed("GET /x HTTP/1.1\r\n");
  std::size_t fed = 0;
  for (int i = 0; i < 100 && !parser.failed(); ++i) {
    parser.feed("X-Pad-" + std::to_string(i) + ": " + std::string(1024, 'p') +
                "\r\n");
    fed += 1024;
  }
  EXPECT_TRUE(parser.failed());
  EXPECT_LE(fed, RequestParser::kMaxHeaderBytes + 2048);
}

TEST(ParserTest, FailedParserStaysFailedOnMoreInput) {
  RequestParser parser;
  parser.feed("GARBAGE\r\n");
  ASSERT_TRUE(parser.failed());
  parser.feed("GET /x HTTP/1.1\r\n\r\n");
  EXPECT_TRUE(parser.failed());  // requires reset() to recover
}

TEST(RequestTest, KeepAliveDefaults) {
  Request r;
  r.version = "HTTP/1.1";
  EXPECT_TRUE(r.keep_alive());
  r.headers.set("Connection", "close");
  EXPECT_FALSE(r.keep_alive());
  Request r10;
  r10.version = "HTTP/1.0";
  EXPECT_FALSE(r10.keep_alive());
}

}  // namespace
}  // namespace tempest::http
