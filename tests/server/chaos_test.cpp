// Chaos suite: every FaultPlan injection site fired against a live server,
// asserting the three recovery invariants — the affected request gets a
// well-formed error (500/503, never a hang or a torn response), the server
// keeps serving once the fault budget is spent, and the FaultCounters ledger
// explains exactly what happened. The suite runs under TSan and ASan+UBSan
// via tests/run_sanitized.sh, so "no leaks, no races" is checked for real.
//
// Every plan here is seeded; the deterministic-replay test at the bottom
// pins the property that makes chaos failures debuggable: same seed, same
// request sequence => identical fault ledger.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/fault.h"
#include "src/db/pool.h"
#include "src/server/baseline_server.h"
#include "src/server/staged_server.h"
#include "src/server/tcp.h"
#include "src/server/transport.h"

namespace tempest::server {
namespace {

std::shared_ptr<FaultPlan> plan_with(FaultSite site, FaultRule rule,
                                     std::uint64_t seed = 1) {
  auto plan = std::make_shared<FaultPlan>(seed);
  rule.enabled = true;
  plan->set(site, rule);
  return plan;
}

std::string header_value(const std::string& response,
                         const std::string& name) {
  const std::string needle = name + ": ";
  const auto pos = response.find(needle);
  if (pos == std::string::npos) return "";
  const auto end = response.find("\r\n", pos);
  return response.substr(pos + needle.size(), end - pos - needle.size());
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.0002);

    db::TableSchema schema;
    schema.name = "t";
    schema.columns = {{"id", db::ColumnType::kInt},
                      {"v", db::ColumnType::kInt}};
    schema.primary_key = 0;
    db_.create_table(schema);
    auto& table = db_.table("t");
    for (int i = 1; i <= 20; ++i) {
      table.insert({db::Value(i), db::Value(i * 10)});
    }

    auto app = std::make_shared<Application>();
    auto loader = std::make_shared<tmpl::MemoryLoader>();
    loader->add("page.html", "<p>v={{ v }} n={{ n }}</p>");
    app->templates = loader;

    // Touches the DB, answers inline (no render stage).
    app->router.add("/db", [](HandlerContext& ctx) -> HandlerResult {
      const auto rs =
          ctx.db->execute("SELECT v FROM t WHERE id = ?", {db::Value(7)});
      return StringResponse{"v=" + std::to_string(rs.at(0, "v").as_int())};
    });
    // Touches the DB and renders a template; cacheable when the fixture
    // enables the cache.
    CachePolicy policy;
    policy.ttl_paper_s = 5.0;
    app->router.add(
        "/page",
        [this](HandlerContext& ctx) -> HandlerResult {
          const auto rs =
              ctx.db->execute("SELECT v FROM t WHERE id = ?", {db::Value(7)});
          tmpl::Dict data;
          data["v"] = tmpl::Value(static_cast<int>(rs.at(0, "v").as_int()));
          data["n"] = tmpl::Value(handler_calls_.fetch_add(1) + 1);
          return TemplateResponse{"page.html", std::move(data)};
        },
        policy);
    // Occupies its worker until the test releases the gate.
    app->router.add("/hold", [this](HandlerContext&) -> HandlerResult {
      holding_.fetch_add(1);
      gate_.acquire();
      return StringResponse{"held"};
    });
    app->router.add("/quick", [](HandlerContext&) -> HandlerResult {
      return StringResponse{"ok"};
    });
    app->static_store.add("/style.css", "body{color:red}", "text/css");
    app_ = app;

    config_.charge_service_costs = false;
    config_.db_connections = 2;
    config_.baseline_threads = 2;
    config_.header_threads = 2;
    config_.static_threads = 1;
    config_.general_threads = 1;
    config_.lengthy_threads = 1;
    config_.render_threads = 1;
    config_.treserve_min = 1;
    // Service times here are wall-noise, not simulated cost; a loaded CI box
    // could push one measurement over the lengthy cutoff and re-route the
    // next request to the lengthy pool's (healthy) connection, breaking the
    // tests that reason about which worker's connection broke. Pin every
    // route to the general pool.
    config_.lengthy_cutoff_paper_s = 1e9;
    // Generous replacement wait: a broken connection's repair only takes a
    // controller tick (1 paper-s), so requests wait for it instead of
    // shedding. Tests that want the timeout set their own value.
    config_.db_acquire_timeout_paper_s = 5000.0;
  }

  void TearDown() override { TimeScale::set(0.005); }

  static std::string raw_get(const std::string& path) {
    return "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  }

  void wait_for_holders(int n) {
    while (holding_.load() < n) std::this_thread::yield();
  }

  db::Database db_;
  std::shared_ptr<const Application> app_;
  ServerConfig config_;
  std::counting_semaphore<> gate_{0};
  std::atomic<int> holding_{0};
  std::atomic<int> handler_calls_{0};
};

TEST_F(ChaosTest, NoFaultPlanLeavesEveryCounterZero) {
  StagedServer server(config_, app_, db_);
  InProcClient client(server);
  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(client.roundtrip(raw_get("/page")).find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(client.roundtrip(raw_get("/style.css")).find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(server.stats().faults().snapshot(), FaultCounters::Snapshot{});
  server.shutdown();
}

TEST_F(ChaosTest, DbErrorPastRetryBudgetAnswers500ThenRecovers) {
  // 3 fires = 1 attempt + the 2 default retries: the statement fails for
  // good, the handler wrapper turns it into a 500, and the next request
  // (budget spent) is served normally.
  FaultRule rule;
  rule.max_fires = 3;
  config_.fault_plan = plan_with(FaultSite::kDbError, rule);
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 500"), 0u);
  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 200"), 0u);

  const auto s = server.stats().faults().snapshot();
  EXPECT_EQ(s.injected_at(FaultSite::kDbError), 3u);
  EXPECT_EQ(s.db_retries, 2u);
  EXPECT_EQ(s.db_retry_successes, 0u);
  EXPECT_EQ(s.handler_errors, 1u);
  EXPECT_EQ(s.stage_exceptions, 0u);  // contained before the pool barrier
  server.shutdown();
}

TEST_F(ChaosTest, TransientDbErrorIsRetriedInvisibly) {
  FaultRule rule;
  rule.max_fires = 1;  // only the first attempt fails
  config_.fault_plan = plan_with(FaultSite::kDbError, rule);
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  const std::string response = client.roundtrip(raw_get("/db"));
  EXPECT_EQ(response.find("HTTP/1.1 200"), 0u) << response;
  EXPECT_NE(response.find("v=70"), std::string::npos);

  const auto s = server.stats().faults().snapshot();
  EXPECT_EQ(s.db_retries, 1u);
  EXPECT_EQ(s.db_retry_successes, 1u);
  EXPECT_EQ(s.handler_errors, 0u);
  server.shutdown();
}

TEST_F(ChaosTest, DroppedConnectionIsReplacedAndServingResumes) {
  FaultRule rule;
  rule.max_fires = 1;
  config_.fault_plan = plan_with(FaultSite::kDbDrop, rule);
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  // The drop is not retryable on the same connection: the request fails 500.
  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 500"), 0u);
  // The next request finds the worker's connection broken, releases it to
  // the repair shelf, and waits for the controller tick that reopens it.
  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 200"), 0u);

  const auto s = server.stats().faults().snapshot();
  EXPECT_EQ(s.injected_at(FaultSite::kDbDrop), 1u);
  EXPECT_EQ(s.connections_reopened, 1u);
  EXPECT_EQ(s.handler_errors, 1u);
  server.shutdown();
}

TEST_F(ChaosTest, HandlerFaultIsContainedToA500) {
  FaultRule rule;
  rule.max_fires = 1;
  config_.fault_plan = plan_with(FaultSite::kHandler, rule);
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 500"), 0u);
  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 200"), 0u);

  const auto s = server.stats().faults().snapshot();
  EXPECT_EQ(s.injected_at(FaultSite::kHandler), 1u);
  EXPECT_EQ(s.handler_errors, 1u);
  server.shutdown();
}

TEST_F(ChaosTest, RenderFaultIsContainedToA500) {
  FaultRule rule;
  rule.max_fires = 1;
  config_.fault_plan = plan_with(FaultSite::kRender, rule);
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  EXPECT_EQ(client.roundtrip(raw_get("/page")).find("HTTP/1.1 500"), 0u);
  EXPECT_EQ(client.roundtrip(raw_get("/page")).find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(server.stats().faults().snapshot().injected_at(FaultSite::kRender),
            1u);
  server.shutdown();
}

TEST_F(ChaosTest, BaselineServerContainsFaultsTheSameWay) {
  FaultRule drop;
  drop.max_fires = 1;
  auto plan = plan_with(FaultSite::kDbDrop, drop);
  FaultRule handler;
  handler.enabled = true;
  handler.max_fires = 1;
  plan->set(FaultSite::kHandler, handler);
  config_.fault_plan = plan;
  // One worker, one connection: the repair is on this request's critical
  // path, so the ledger below is deterministic.
  config_.baseline_threads = 1;
  config_.db_connections = 1;
  BaselineServer server(config_, app_, db_);
  InProcClient client(server);

  // First request eats the handler fault, second the drop (or vice versa —
  // both are 500s), and after the sampler tick repairs the connection the
  // server is healthy again.
  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 500"), 0u);
  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 500"), 0u);
  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 200"), 0u);

  const auto s = server.stats().faults().snapshot();
  EXPECT_EQ(s.injected_at(FaultSite::kDbDrop), 1u);
  EXPECT_EQ(s.injected_at(FaultSite::kHandler), 1u);
  EXPECT_EQ(s.connections_reopened, 1u);
  EXPECT_EQ(s.handler_errors, 2u);
  server.shutdown();
}

TEST_F(ChaosTest, SnapshotLockingKeepsTheSameRecoveryInvariants) {
  // The chaos invariants are locking-mode independent: with snapshot reads
  // on, an error past the retry budget is still a contained 500, a dropped
  // connection is still replaced, and serving resumes.
  config_.db_locking = db::LockingMode::kSnapshot;
  FaultRule rule;
  rule.max_fires = 3;
  config_.fault_plan = plan_with(FaultSite::kDbError, rule);
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 500"), 0u);
  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 200"), 0u);

  const auto s = server.stats().faults().snapshot();
  EXPECT_EQ(s.injected_at(FaultSite::kDbError), 3u);
  EXPECT_EQ(s.db_retries, 2u);
  EXPECT_EQ(s.handler_errors, 1u);
  server.shutdown();
}

TEST_F(ChaosTest, SnapshotDroppedConnectionIsReplacedToo) {
  config_.db_locking = db::LockingMode::kSnapshot;
  FaultRule rule;
  rule.max_fires = 1;
  config_.fault_plan = plan_with(FaultSite::kDbDrop, rule);
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 500"), 0u);
  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 200"), 0u);

  const auto s = server.stats().faults().snapshot();
  EXPECT_EQ(s.injected_at(FaultSite::kDbDrop), 1u);
  EXPECT_EQ(s.connections_reopened, 1u);
  server.shutdown();
}

TEST_F(ChaosTest, ExpiredDeadlineIsShedWith503BeforeTheDynamicPool) {
  // 500 ms wall: roomy enough that /hold always reaches its handler within
  // budget even on a loaded CI box, small enough to age out in one sleep.
  config_.request_deadline_paper_s = 2500.0;
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  // Occupy the single general worker, then let a second request age in the
  // queue to double its budget before the worker frees up.
  auto held = client.send(raw_get("/hold"));
  wait_for_holders(1);
  auto queued = client.send(raw_get("/quick"));
  std::this_thread::sleep_for(std::chrono::milliseconds(1000));
  gate_.release(1);

  EXPECT_EQ(held.get().find("HTTP/1.1 200"), 0u);
  const std::string response = queued.get();
  EXPECT_EQ(response.find("HTTP/1.1 503"), 0u) << response;
  EXPECT_NE(response.find("Retry-After"), std::string::npos);
  EXPECT_NE(response.find("deadline"), std::string::npos);
  EXPECT_GE(server.stats().faults().snapshot().deadline_rejected, 1u);
  server.shutdown();
}

TEST_F(ChaosTest, ConnectionExhaustionSheds503InsteadOfWedging) {
  // 3 connections: general + lengthy workers adopt one each, one stays idle.
  config_.db_connections = 3;
  config_.db_acquire_timeout_paper_s = 20.0;  // 4 ms wall
  // Park the controller so no repair happens during the test window.
  config_.controller_period_paper_s = 1e9;
  FaultRule rule;
  rule.max_fires = 1;
  config_.fault_plan = plan_with(FaultSite::kDbDrop, rule);
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  // Let both dynamic workers adopt their connections, then hold the spare.
  while (server.connection_pool().available() != 1) std::this_thread::yield();
  auto spare = server.connection_pool().acquire();

  // Break the general worker's connection...
  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 500"), 0u);
  // ...so the next request needs a replacement, finds none (spare held,
  // repair parked), and sheds after the bounded wait instead of blocking the
  // worker forever.
  const std::string shed = client.roundtrip(raw_get("/db"));
  EXPECT_EQ(shed.find("HTTP/1.1 503"), 0u) << shed;
  EXPECT_NE(shed.find("no database connection"), std::string::npos);
  EXPECT_EQ(server.stats().faults().snapshot().acquire_timeouts, 1u);

  // Handing the spare back restores service without any repair.
  spare.release();
  EXPECT_EQ(client.roundtrip(raw_get("/db")).find("HTTP/1.1 200"), 0u);
  server.shutdown();
}

TEST_F(ChaosTest, DegradedModeServesStaleCacheWhileDbFaults) {
  config_.cache.enabled = true;
  auto plan = std::make_shared<FaultPlan>(42);  // armed later
  config_.fault_plan = plan;
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  // Healthy: render once and cache it (TTL 5 paper-s = 1 ms wall).
  const std::string first = client.roundtrip(raw_get("/page"));
  EXPECT_EQ(first.find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(header_value(first, "X-Cache"), "miss");
  EXPECT_EQ(handler_calls_.load(), 1);

  // Let the entry expire, then start the DB brown-out. (The plan is only
  // mutated while no request is in flight.)
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  FaultRule rule;
  rule.enabled = true;
  plan->set(FaultSite::kDbError, rule);

  // Degraded: the expired entry is served with the stale markers instead of
  // sending the request into the faulting dynamic path. The handler did not
  // run; the entry survives for the next degraded request.
  const std::string degraded = client.roundtrip(raw_get("/page"));
  EXPECT_EQ(degraded.find("HTTP/1.1 200"), 0u) << degraded;
  EXPECT_EQ(header_value(degraded, "X-Cache"), "stale");
  EXPECT_EQ(header_value(degraded, "Warning"), "110 - \"Response is Stale\"");
  EXPECT_EQ(handler_calls_.load(), 1);
  EXPECT_EQ(server.stats().faults().snapshot().degraded_stale_served, 1u);

  // Recovery: end the brown-out; the strict lookup expires the stale entry
  // and the page is rendered fresh.
  rule.enabled = false;
  plan->set(FaultSite::kDbError, rule);
  const std::string fresh = client.roundtrip(raw_get("/page"));
  EXPECT_EQ(fresh.find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(header_value(fresh, "X-Cache"), "miss");
  EXPECT_EQ(handler_calls_.load(), 2);
  server.shutdown();
}

TEST_F(ChaosTest, WithoutDegradedModeTheSameBrownOutFailsClosed) {
  // The seed-equivalent behaviour: no stale serving, so the brown-out turns
  // every /page into a retried-then-failed DB statement and a 500.
  config_.cache.enabled = true;
  config_.serve_stale_when_degraded = false;
  auto plan = std::make_shared<FaultPlan>(42);
  config_.fault_plan = plan;
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  EXPECT_EQ(client.roundtrip(raw_get("/page")).find("HTTP/1.1 200"), 0u);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  FaultRule rule;
  rule.enabled = true;
  plan->set(FaultSite::kDbError, rule);

  const std::string browned = client.roundtrip(raw_get("/page"));
  EXPECT_EQ(browned.find("HTTP/1.1 500"), 0u) << browned;
  EXPECT_EQ(server.stats().faults().snapshot().degraded_stale_served, 0u);
  EXPECT_GE(server.stats().faults().snapshot().db_retries, 1u);
  server.shutdown();
}

TEST_F(ChaosTest, InjectedResetSeversTheConnectionNotTheServer) {
  StagedServer server(config_, app_, db_);
  FaultRule rule;
  rule.max_fires = 1;
  TransportConfig transport = config_.transport;
  transport.fault_plan = plan_with(FaultSite::kSocketReset, rule);
  TcpListener listener(server, 0, transport, &server.stats());

  // The aborted connection yields no (complete) response...
  const std::string severed = tcp_roundtrip(listener.port(), raw_get("/db"));
  EXPECT_EQ(severed.find("HTTP/1.1 200"), std::string::npos) << severed;
  // ...and the very next connection is served normally.
  const std::string ok = tcp_roundtrip(listener.port(), raw_get("/db"));
  EXPECT_EQ(ok.find("HTTP/1.1 200"), 0u) << ok;
  EXPECT_EQ(
      server.stats().faults().snapshot().injected_at(FaultSite::kSocketReset),
      1u);
  listener.stop();
  server.shutdown();
}

TEST_F(ChaosTest, ShortWritesStillDeliverTheExactResponse) {
  StagedServer server(config_, app_, db_);
  TransportConfig faulted = config_.transport;
  faulted.fault_plan = plan_with(FaultSite::kShortWrite, FaultRule{});
  TcpListener slow(server, 0, faulted, &server.stats());
  TcpListener plain(server, 0, config_.transport, nullptr);

  // One byte per sendmsg: the flush path must resume mid-header and
  // mid-body until the whole image is out, byte-for-byte identical to the
  // unfaulted transport (modulo the Date header's second granularity).
  auto strip_date = [](std::string response) {
    const auto pos = response.find("Date: ");
    if (pos != std::string::npos) {
      response.erase(pos, response.find("\r\n", pos) + 2 - pos);
    }
    return response;
  };
  const std::string trickled =
      strip_date(tcp_roundtrip(slow.port(), raw_get("/style.css")));
  const std::string reference =
      strip_date(tcp_roundtrip(plain.port(), raw_get("/style.css")));
  EXPECT_EQ(trickled, reference);
  EXPECT_EQ(trickled.find("HTTP/1.1 200"), 0u);
  EXPECT_NE(trickled.find("body{color:red}"), std::string::npos);
  // Each 1-byte sendmsg consumed one fault check.
  EXPECT_GE(
      server.stats().faults().snapshot().injected_at(FaultSite::kShortWrite),
      trickled.size() / 2);
  slow.stop();
  plain.stop();
  server.shutdown();
}

// --- deterministic replay ----------------------------------------------------

struct ReplayResult {
  std::vector<std::string> status_lines;
  FaultCounters::Snapshot faults;
  bool operator==(const ReplayResult&) const = default;
};

// One fixed request sequence against a server chaosed at every in-process
// site with seed-driven probabilities. Sequential requests mean the per-site
// check sequences are identical across runs, so the same seed must produce
// the same fault decisions, the same statuses, and the same ledger.
ReplayResult run_replay(std::uint64_t seed, std::atomic<int>& handler_calls,
                        db::Database& db,
                        std::shared_ptr<const Application> app,
                        ServerConfig config) {
  auto plan = std::make_shared<FaultPlan>(seed);
  FaultRule flaky;
  flaky.enabled = true;
  flaky.probability = 0.3;
  plan->set(FaultSite::kDbError, flaky);
  FaultRule rare;
  rare.enabled = true;
  rare.probability = 0.2;
  plan->set(FaultSite::kHandler, rare);
  plan->set(FaultSite::kRender, rare);
  config.fault_plan = plan;

  StagedServer server(config, app, db);
  InProcClient client(server);
  ReplayResult result;
  for (int i = 0; i < 30; ++i) {
    const std::string path = i % 2 ? "/page" : "/db";
    const std::string response =
        client.roundtrip("GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
    result.status_lines.push_back(response.substr(0, response.find("\r\n")));
  }
  result.faults = server.stats().faults().snapshot();
  server.shutdown();
  handler_calls.store(0);
  return result;
}

TEST_F(ChaosTest, SameSeedReplaysTheIdenticalFaultSequence) {
  constexpr std::uint64_t kSeed = 20090629;  // any failure reproduces from it
  SCOPED_TRACE("chaos replay seed=" + std::to_string(kSeed));
  const ReplayResult first =
      run_replay(kSeed, handler_calls_, db_, app_, config_);
  const ReplayResult second =
      run_replay(kSeed, handler_calls_, db_, app_, config_);
  EXPECT_EQ(first.status_lines, second.status_lines);
  EXPECT_EQ(first.faults, second.faults);
  // The plan actually did something, or this test proves nothing.
  EXPECT_GT(first.faults.injected_total(), 0u);
}

}  // namespace
}  // namespace tempest::server
