// Session layer: token integrity, eviction accounting, the lazy per-request
// scope, cookie round-trips through both server variants over real sockets,
// and a cross-thread hammer (the TSan/ASan suites build this file).
#include "src/server/session.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/server/baseline_server.h"
#include "src/server/staged_server.h"
#include "src/server/tcp.h"
#include "src/tpcw/handlers.h"
#include "src/tpcw/populate.h"

namespace tempest::server {
namespace {

SessionConfig small_config() {
  SessionConfig config;
  config.enabled = true;
  config.shards = 1;  // deterministic LRU order across ids
  config.max_sessions = 4;
  config.idle_ttl_paper_s = 10.0;
  return config;
}

// --- token integrity ---------------------------------------------------------

TEST(SessionManagerTest, CreateThenFindValidates) {
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);
  auto session = manager.create(0.0);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(manager.find(session->token(), 1.0).get(), session.get());
  const auto snap = counters.snapshot();
  EXPECT_EQ(snap.issued, 1u);
  EXPECT_EQ(snap.validated, 1u);
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.live, 1u);
  EXPECT_DOUBLE_EQ(snap.hit_rate(), 1.0);
}

TEST(SessionManagerTest, TamperedMacRejected) {
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);
  std::string token = manager.create(0.0)->token();
  // Flip one hex digit of the MAC (the suffix after the last dot).
  token.back() = token.back() == 'a' ? 'b' : 'a';
  EXPECT_EQ(manager.find(token, 0.0), nullptr);
  EXPECT_EQ(counters.snapshot().rejected, 1u);
}

TEST(SessionManagerTest, TamperedIdRejected) {
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);
  const std::string token = manager.create(0.0)->token();
  // Swap the id prefix for another number: the MAC no longer matches.
  const std::string forged = "999" + token.substr(token.find('.'));
  EXPECT_EQ(manager.find(forged, 0.0), nullptr);
  EXPECT_EQ(counters.snapshot().rejected, 1u);
}

TEST(SessionManagerTest, MalformedTokensRejected) {
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);
  for (const char* garbage :
       {"", "no-dots", "1.2", "1.2.3", ".payload.mac", "1..",
        "99999999999999999999999999.aa.bb"}) {
    EXPECT_EQ(manager.find(garbage, 0.0), nullptr) << garbage;
  }
  EXPECT_EQ(counters.snapshot().rejected, 7u);
}

TEST(SessionManagerTest, ForeignSecretRejected) {
  // A token minted under one secret must not validate under another.
  SessionCounters counters_a, counters_b;
  SessionConfig config_b = small_config();
  config_b.secret = "a-different-secret";
  SessionManager alice(small_config(), &counters_a);
  SessionManager bob(config_b, &counters_b);
  const std::string token = alice.create(0.0)->token();
  EXPECT_EQ(bob.find(token, 0.0), nullptr);
  EXPECT_EQ(counters_b.snapshot().rejected, 1u);
}

TEST(SessionManagerTest, DestroyedSessionTokenCountsExpired) {
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);
  const std::string token = manager.create(0.0)->token();
  EXPECT_TRUE(manager.destroy(token));
  // Validly signed, but the session is gone: expired, not rejected.
  EXPECT_EQ(manager.find(token, 0.0), nullptr);
  const auto snap = counters.snapshot();
  EXPECT_EQ(snap.destroyed, 1u);
  EXPECT_EQ(snap.expired, 1u);
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.live, 0u);
}

TEST(SessionManagerTest, DestroyOnForgedTokenIsNoop) {
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);
  manager.create(0.0);
  EXPECT_FALSE(manager.destroy("1.deadbeef.notamac"));
  EXPECT_EQ(manager.size(), 1u);
}

// --- eviction ----------------------------------------------------------------

TEST(SessionManagerTest, LruEvictionAtCap) {
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);  // cap 4, one shard
  std::vector<std::string> tokens;
  for (int i = 0; i < 4; ++i) tokens.push_back(manager.create(0.0)->token());
  // Touch the oldest so it is no longer the LRU victim.
  ASSERT_NE(manager.find(tokens[0], 1.0), nullptr);
  manager.create(2.0);  // evicts tokens[1], the least recently used
  EXPECT_EQ(manager.size(), 4u);
  EXPECT_EQ(counters.snapshot().evicted_lru, 1u);
  EXPECT_NE(manager.find(tokens[0], 3.0), nullptr);
  EXPECT_EQ(manager.find(tokens[1], 3.0), nullptr);
  EXPECT_EQ(counters.snapshot().live, 4u);
}

TEST(SessionManagerTest, SweepEvictsIdleSessions) {
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);  // idle TTL 10
  const std::string stale = manager.create(0.0)->token();
  const std::string fresh = manager.create(8.0)->token();
  EXPECT_EQ(manager.sweep(5.0), 0u);  // nothing idle past TTL yet
  EXPECT_EQ(manager.sweep(15.0), 1u);
  EXPECT_EQ(manager.size(), 1u);
  EXPECT_EQ(counters.snapshot().evicted_ttl, 1u);
  EXPECT_EQ(manager.find(stale, 15.0), nullptr);
  EXPECT_NE(manager.find(fresh, 15.0), nullptr);
}

TEST(SessionManagerTest, FindEvictsExpiredOnTouch) {
  // A token arriving after its session idled out is expired right at
  // lookup, without waiting for the next sweep tick.
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);
  const std::string token = manager.create(0.0)->token();
  EXPECT_EQ(manager.find(token, 100.0), nullptr);
  const auto snap = counters.snapshot();
  EXPECT_EQ(snap.expired, 1u);
  EXPECT_EQ(snap.evicted_ttl, 1u);
  EXPECT_EQ(manager.size(), 0u);
}

TEST(SessionManagerTest, FindBumpsIdleClock) {
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);
  const std::string token = manager.create(0.0)->token();
  // Touched every 8 paper-seconds: never idle past the 10 s TTL.
  for (double t = 8.0; t <= 40.0; t += 8.0) {
    EXPECT_NE(manager.find(token, t), nullptr) << "t=" << t;
  }
  EXPECT_EQ(manager.sweep(45.0), 0u);
}

// --- session state -----------------------------------------------------------

TEST(SessionTest, StateRoundTrip) {
  SessionManager manager(small_config(), nullptr);
  auto session = manager.create(0.0);
  session->set("c_id", tmpl::Value(std::int64_t{42}));
  session->set("c_uname", tmpl::Value(std::string("user42")));
  EXPECT_EQ(session->get_int("c_id", 0), 42);
  EXPECT_EQ(session->get_int("missing", -1), -1);
  EXPECT_EQ(session->get_int("c_uname", -1), -1);  // wrong type -> fallback
  session->erase("c_id");
  EXPECT_EQ(session->get_int("c_id", 0), 0);
  EXPECT_EQ(session->state().count("c_uname"), 1u);
}

// --- SessionScope (the per-request lazy accessor) ----------------------------

http::Request request_with_cookie(const std::string& header_value) {
  http::Request request;
  if (!header_value.empty()) request.headers.add("Cookie", header_value);
  return request;
}

TEST(SessionScopeTest, NoCookieTouchesNothing) {
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);
  const http::Request request = request_with_cookie("");
  SessionScope scope(&manager, &request, 0.0);
  EXPECT_EQ(scope.existing(), nullptr);
  // Lazy: an anonymous request must not register as a session lookup.
  EXPECT_EQ(counters.snapshot().lookups(), 0u);
}

TEST(SessionScopeTest, GetOrCreateQueuesSetCookie) {
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);
  const http::Request request = request_with_cookie("");
  SessionScope scope(&manager, &request, 0.0);
  Session* session = scope.get_or_create();
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(scope.set_cookies().size(), 1u);
  const std::string& header = scope.set_cookies()[0];
  EXPECT_EQ(header.find("tempest_sid=" + session->token()), 0u);
  // Idempotent within the request: no second cookie, same session.
  EXPECT_EQ(scope.get_or_create(), session);
  EXPECT_EQ(scope.set_cookies().size(), 1u);
}

TEST(SessionScopeTest, ExistingResolvesFromCookieHeader) {
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);
  auto session = manager.create(0.0);
  const http::Request request =
      request_with_cookie("theme=dark; tempest_sid=" + session->token());
  SessionScope scope(&manager, &request, 1.0);
  EXPECT_EQ(scope.existing(), session.get());
  EXPECT_TRUE(scope.set_cookies().empty());
  EXPECT_EQ(counters.snapshot().validated, 1u);
}

TEST(SessionScopeTest, DestroyQueuesExpiringCookie) {
  SessionCounters counters;
  SessionManager manager(small_config(), &counters);
  auto session = manager.create(0.0);
  const http::Request request =
      request_with_cookie("tempest_sid=" + session->token());
  SessionScope scope(&manager, &request, 1.0);
  scope.destroy();
  EXPECT_EQ(manager.size(), 0u);
  ASSERT_EQ(scope.set_cookies().size(), 1u);
  EXPECT_NE(scope.set_cookies()[0].find("Max-Age=0"), std::string::npos);
}

TEST(SessionScopeTest, NullManagerIsInert) {
  const http::Request request = request_with_cookie("tempest_sid=x.y.z");
  SessionScope scope(nullptr, &request, 0.0);
  EXPECT_EQ(scope.existing(), nullptr);
  EXPECT_EQ(scope.get_or_create(), nullptr);
  scope.destroy();
  EXPECT_TRUE(scope.set_cookies().empty());
}

TEST(SessionManagerTest, RequestHasCookiePreCheck) {
  SessionManager manager(small_config(), nullptr);
  http::HeaderMap with, without, other;
  with.add("Cookie", "a=1; tempest_sid=tok");
  without.add("Accept", "text/html");
  other.add("Cookie", "theme=dark; not_tempest_sid_x=1");
  EXPECT_TRUE(manager.request_has_cookie(with));
  EXPECT_FALSE(manager.request_has_cookie(without));
  EXPECT_FALSE(manager.request_has_cookie(other));
}

// --- cookie round-trip through both servers over TCP -------------------------

class SessionTcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.0001);
    pop_ = tpcw::populate_tpcw(db_, tpcw::Scale::tiny());
    app_ = tpcw::make_tpcw_application(
        tpcw::TpcwState::from_population(tpcw::Scale::tiny(), pop_));
    config_.db_connections = 8;
    config_.baseline_threads = 8;
    config_.header_threads = 2;
    config_.static_threads = 2;
    config_.general_threads = 6;
    config_.lengthy_threads = 2;
    config_.render_threads = 2;
    config_.charge_service_costs = false;
    config_.sessions.enabled = true;
  }

  void TearDown() override { TimeScale::set(0.005); }

  // The "tempest_sid=<token>" pair out of a response's Set-Cookie header.
  static std::string extract_cookie_pair(const std::string& response) {
    const std::size_t start = response.find("Set-Cookie: ");
    if (start == std::string::npos) return "";
    const std::size_t value = start + 12;
    std::size_t end = response.find("\r\n", value);
    const std::size_t semi = response.find(';', value);
    if (semi != std::string::npos && semi < end) end = semi;
    return response.substr(value, end - value);
  }

  static std::string get(std::uint16_t port, const std::string& target,
                         const std::string& cookie = "") {
    std::string request = "GET " + target + " HTTP/1.1\r\nHost: x\r\n";
    if (!cookie.empty()) request += "Cookie: " + cookie + "\r\n";
    request += "\r\n";
    return tcp_roundtrip(port, request);
  }

  template <typename Server>
  void run_round_trip() {
    Server server(config_, app_, db_);
    TcpListener listener(server, 0, config_.transport, &server.stats());

    // 1. Login binds customer 7 to a fresh session.
    const std::string login =
        get(listener.port(), "/login?uname=user7&passwd=pw7");
    EXPECT_EQ(login.find("HTTP/1.1 200"), 0u);
    EXPECT_NE(login.find("customer #7"), std::string::npos);
    const std::string cookie = extract_cookie_pair(login);
    ASSERT_EQ(cookie.find("tempest_sid="), 0u);

    // 2. The cookie carries the identity: no c_id in the URL, yet the page
    //    is customer 7's (the anonymous default would be customer 1).
    const std::string page =
        get(listener.port(), "/customer_registration", cookie);
    EXPECT_EQ(page.find("HTTP/1.1 200"), 0u);
    EXPECT_NE(page.find("(user7)"), std::string::npos);
    EXPECT_EQ(page.find("(user1)"), std::string::npos);

    // 3. Wrong password: 403 and no cookie.
    const std::string denied =
        get(listener.port(), "/login?uname=user7&passwd=wrong");
    EXPECT_EQ(denied.find("HTTP/1.1 403"), 0u);
    EXPECT_EQ(denied.find("Set-Cookie"), std::string::npos);

    // 4. Logout expires the cookie; the old token no longer resolves.
    const std::string logout = get(listener.port(), "/logout", cookie);
    EXPECT_NE(logout.find("Max-Age=0"), std::string::npos);
    const std::string after =
        get(listener.port(), "/customer_registration", cookie);
    EXPECT_NE(after.find("(user1)"), std::string::npos);

    const auto snap = server.stats().sessions().snapshot();
    EXPECT_EQ(snap.issued, 1u);
    EXPECT_GE(snap.validated, 2u);
    EXPECT_EQ(snap.destroyed, 1u);
    EXPECT_EQ(snap.expired, 1u);
    EXPECT_EQ(snap.live, 0u);

    listener.stop();
    server.shutdown();
  }

  db::Database db_;
  tpcw::PopulationSummary pop_;
  std::shared_ptr<const Application> app_;
  ServerConfig config_;
};

TEST_F(SessionTcpTest, StagedServerCookieRoundTrip) {
  run_round_trip<StagedServer>();
}

TEST_F(SessionTcpTest, BaselineServerCookieRoundTrip) {
  run_round_trip<BaselineServer>();
}

// --- cross-thread hammer -----------------------------------------------------

TEST(SessionHammerTest, ConcurrentFindMutateCreateSweep) {
  SessionConfig config;
  config.enabled = true;
  config.shards = 4;
  config.max_sessions = 64;
  config.idle_ttl_paper_s = 0.5;
  SessionCounters counters;
  SessionManager manager(config, &counters);

  auto shared = manager.create(0.0);
  const std::string token = shared->token();
  constexpr int kIters = 2000;
  std::atomic<std::uint64_t> validated{0};

  std::vector<std::thread> threads;
  // 4 threads hammer one session: find + state mutation through the result.
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const double now = static_cast<double>(i) * 0.001;
        if (auto session = manager.find(token, now)) {
          session->set("k" + std::to_string(i % 4),
                       tmpl::Value(std::int64_t{t * kIters + i}));
          (void)session->get_int("k0", 0);
          validated.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // 2 threads churn other sessions through the LRU cap.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const double now = static_cast<double>(i) * 0.001;
        const std::string victim = manager.create(now)->token();
        if (i % 3 == 0) manager.destroy(victim);
      }
    });
  }
  // 1 thread sweeps concurrently.
  threads.emplace_back([&] {
    for (int i = 0; i < kIters / 10; ++i) {
      manager.sweep(static_cast<double>(i) * 0.01);
    }
  });
  for (auto& thread : threads) thread.join();

  // The hammered session is constantly touched (its `now` stays within the
  // TTL of concurrent sweeps' clocks only sometimes — it may get swept), so
  // the invariant is accounting consistency, not a specific count.
  const auto snap = counters.snapshot();
  EXPECT_EQ(snap.validated, validated.load());
  EXPECT_EQ(snap.live,
            snap.issued - snap.destroyed - snap.evicted_lru - snap.evicted_ttl);
  EXPECT_EQ(manager.size(), snap.live);
  EXPECT_LE(manager.size(), config.max_sessions + config.shards);
}

}  // namespace
}  // namespace tempest::server
