// The epoll reactor transport: keep-alive reuse, Connection: close,
// fragmented sends, timeouts, connection caps, transport-level errors, and
// the counters behind them — against both server variants.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/server/baseline_server.h"
#include "src/server/staged_server.h"
#include "src/server/tcp.h"
#include "src/tpcw/handlers.h"
#include "src/tpcw/populate.h"

namespace tempest::server {
namespace {

std::string get(const std::string& path, bool close = false) {
  std::string req = "GET " + path + " HTTP/1.1\r\nHost: x\r\n";
  if (close) req += "Connection: close\r\n";
  req += "\r\n";
  return req;
}

class TransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.0001);
    pop_ = tpcw::populate_tpcw(db_, tpcw::Scale::tiny());
    app_ = tpcw::make_tpcw_application(
        tpcw::TpcwState::from_population(tpcw::Scale::tiny(), pop_));
    config_.db_connections = 8;
    config_.baseline_threads = 8;
    config_.header_threads = 2;
    config_.static_threads = 2;
    config_.general_threads = 6;
    config_.lengthy_threads = 2;
    config_.render_threads = 2;
  }

  void TearDown() override { TimeScale::set(0.005); }

  db::Database db_;
  tpcw::PopulationSummary pop_;
  std::shared_ptr<const Application> app_;
  ServerConfig config_;
};

// --- keep-alive ------------------------------------------------------------

TEST_F(TransportTest, StagedServerServesManyRequestsOnOneConnection) {
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, config_.transport, &server.stats());

  TcpClient client(listener.port());
  for (int i = 0; i < 12; ++i) {
    const std::string url =
        i % 2 ? "/home?c_id=" + std::to_string(i + 1) : "/img/logo.gif";
    const std::string response = client.request(get(url));
    EXPECT_EQ(response.find("HTTP/1.1 200"), 0u) << "request " << i;
    EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos);
  }
  const auto counters = listener.counters().snapshot();
  EXPECT_EQ(counters.accepted, 1u);
  EXPECT_EQ(counters.requests, 12u);
  EXPECT_EQ(counters.keepalive_reuse, 11u);

  listener.stop();
  server.shutdown();
}

TEST_F(TransportTest, BaselineServerServesManyRequestsOnOneConnection) {
  BaselineServer server(config_, app_, db_);
  TcpListener listener(server, 0, config_.transport, &server.stats());

  TcpClient client(listener.port());
  for (int i = 0; i < 10; ++i) {
    const std::string response = client.request(get("/home?c_id=2"));
    EXPECT_EQ(response.find("HTTP/1.1 200"), 0u) << "request " << i;
  }
  const auto counters = server.stats().transport().snapshot();
  EXPECT_EQ(counters.accepted, 1u);
  EXPECT_EQ(counters.keepalive_reuse, 9u);

  listener.stop();
  server.shutdown();
}

TEST_F(TransportTest, ConnectionCloseIsHonored) {
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, config_.transport, &server.stats());

  TcpClient client(listener.port());
  const std::string response =
      client.request(get("/home?c_id=1", /*close=*/true));
  EXPECT_EQ(response.find("HTTP/1.1 200"), 0u);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_TRUE(client.server_closed(2000));

  listener.stop();
  server.shutdown();
}

TEST_F(TransportTest, Http10DefaultsToClose) {
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, config_.transport, &server.stats());

  TcpClient client(listener.port());
  const std::string response =
      client.request("GET /home?c_id=1 HTTP/1.0\r\nHost: x\r\n\r\n");
  EXPECT_EQ(response.find("HTTP/1.1 200"), 0u);
  EXPECT_TRUE(client.server_closed(2000));

  listener.stop();
  server.shutdown();
}

TEST_F(TransportTest, MaxRequestsPerConnectionCapsReuse) {
  TransportConfig transport;
  transport.max_requests_per_connection = 3;
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, transport, &server.stats());

  TcpClient client(listener.port());
  for (int i = 0; i < 3; ++i) {
    const std::string response = client.request(get("/img/logo.gif"));
    EXPECT_EQ(response.find("HTTP/1.1 200"), 0u);
    const bool last = i == 2;
    EXPECT_EQ(response.find("Connection: close") != std::string::npos, last)
        << "request " << i;
  }
  EXPECT_TRUE(client.server_closed(2000));

  listener.stop();
  server.shutdown();
}

// --- incremental parsing over the wire -------------------------------------

TEST_F(TransportTest, FragmentedRequestBytesAreAssembled) {
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, config_.transport, &server.stats());

  TcpClient client(listener.port());
  const std::string request = get("/home?c_id=3");
  // Trickle the request a few bytes at a time with real pauses: every chunk
  // arrives as its own epoll event and feeds the parser incrementally.
  for (std::size_t i = 0; i < request.size(); i += 7) {
    client.send_raw(request.substr(i, 7));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::string response = client.read_response();
  EXPECT_EQ(response.find("HTTP/1.1 200"), 0u);
  EXPECT_NE(response.find("Welcome back"), std::string::npos);

  listener.stop();
  server.shutdown();
}

TEST_F(TransportTest, PipelinedRequestsAnsweredInOrder) {
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, config_.transport, &server.stats());

  TcpClient client(listener.port());
  // Send two requests back-to-back before reading anything; responses must
  // arrive in request order (the reactor serializes per connection).
  client.send_raw(get("/home?c_id=4") + get("/img/logo.gif"));
  const std::string first = client.read_response();
  const std::string second = client.read_response();
  EXPECT_NE(first.find("Welcome back"), std::string::npos);
  EXPECT_EQ(second.find("HTTP/1.1 200"), 0u);
  EXPECT_NE(second.find("Content-Type: image/gif"), std::string::npos);

  listener.stop();
  server.shutdown();
}

// --- transport-level rejections --------------------------------------------

TEST_F(TransportTest, MalformedRequestGets400FromTransport) {
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, config_.transport, &server.stats());

  TcpClient client(listener.port());
  const std::string response = client.request("GARBAGE\r\n\r\n");
  EXPECT_EQ(response.find("HTTP/1.1 400"), 0u);
  EXPECT_TRUE(client.server_closed(2000));
  EXPECT_GE(listener.counters().snapshot().parse_errors, 1u);

  listener.stop();
  server.shutdown();
}

TEST_F(TransportTest, OversizedRequestGets413) {
  TransportConfig transport;
  transport.max_request_bytes = 256;
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, transport, &server.stats());

  TcpClient client(listener.port());
  client.send_raw("GET /home HTTP/1.1\r\nX-Filler: " +
                  std::string(400, 'x'));
  const std::string response = client.read_response();
  EXPECT_EQ(response.find("HTTP/1.1 413"), 0u);
  EXPECT_GE(listener.counters().snapshot().oversized_rejected, 1u);

  listener.stop();
  server.shutdown();
}

TEST_F(TransportTest, MaxConnectionsRefusesExtraClients) {
  TransportConfig transport;
  transport.max_connections = 2;
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, transport, &server.stats());

  TcpClient first(listener.port());
  TcpClient second(listener.port());
  // Make sure both connections are registered before the third arrives.
  EXPECT_EQ(first.request(get("/img/logo.gif")).find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(second.request(get("/img/logo.gif")).find("HTTP/1.1 200"), 0u);

  TcpClient third(listener.port());
  EXPECT_TRUE(third.server_closed(3000));
  EXPECT_GE(listener.counters().snapshot().refused_max_connections, 1u);

  listener.stop();
  server.shutdown();
}

// --- timeouts --------------------------------------------------------------

TEST_F(TransportTest, IdleConnectionIsTimedOut) {
  TransportConfig transport;
  transport.idle_timeout_ms = 100;
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, transport, &server.stats());

  TcpClient client(listener.port());
  EXPECT_TRUE(client.server_closed(3000));
  EXPECT_GE(listener.counters().snapshot().idle_timeouts, 1u);

  listener.stop();
  server.shutdown();
}

TEST_F(TransportTest, StalledHeaderReadIsTimedOut) {
  TransportConfig transport;
  transport.header_timeout_ms = 100;
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, transport, &server.stats());

  TcpClient client(listener.port());
  client.send_raw("GET /home HTTP/1.1\r\nHost: x\r\n");  // never finishes
  EXPECT_TRUE(client.server_closed(3000));
  EXPECT_GE(listener.counters().snapshot().header_timeouts, 1u);

  listener.stop();
  server.shutdown();
}

// --- shutdown and lifetime -------------------------------------------------

TEST_F(TransportTest, StopWithOpenConnectionsDoesNotHang) {
  StagedServer server(config_, app_, db_);
  auto listener = std::make_unique<TcpListener>(server, 0, config_.transport,
                                                &server.stats());
  TcpClient idle(listener->port());
  TcpClient busy(listener->port());
  EXPECT_EQ(busy.request(get("/img/logo.gif")).find("HTTP/1.1 200"), 0u);
  listener->stop();
  listener.reset();  // must not hang or crash with conns open
  server.shutdown();
  SUCCEED();
}

TEST_F(TransportTest, ConcurrentKeepAliveClients) {
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, config_.transport, &server.stats());

  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] {
      TcpClient client(listener.port());
      for (int j = 0; j < 5; ++j) {
        const std::string url = (i + j) % 2
                                    ? "/product_detail?i_id=" +
                                          std::to_string(i + 1)
                                    : "/img/logo.gif";
        if (client.request(get(url)).find("HTTP/1.1 200") == 0) ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 40);
  const auto counters = listener.counters().snapshot();
  EXPECT_EQ(counters.accepted, 8u);
  EXPECT_EQ(counters.requests, 40u);
  EXPECT_EQ(counters.keepalive_reuse, 32u);

  listener.stop();
  server.shutdown();
}

// --- partial vectored writes ------------------------------------------------

// A response far larger than the socket buffers forces ::sendmsg to return
// short counts and EAGAIN mid-payload, repeatedly, at arbitrary offsets —
// including inside the header block and across the header/body iovec seam.
// The client shrinks its receive window and drains with pauses so the
// reactor's write state machine (out_off bookkeeping, EPOLLOUT re-arming,
// payload completion) is exercised for real. Bytes must survive intact.
TEST_F(TransportTest, HugeResponseSurvivesPartialWrites) {
  auto app = std::make_shared<Application>();
  app->static_store.add_blob("/huge.bin", 3 << 19,  // 1.5 MiB
                             "application/octet-stream");
  auto app_const = std::static_pointer_cast<const Application>(app);
  StagedServer server(config_, app_const, db_);
  TcpListener listener(server, 0, config_.transport, &server.stats());

  TcpClient client(listener.port(), /*io_timeout_ms=*/10000,
                   /*rcvbuf_bytes=*/4096);
  client.send_raw(get("/huge.bin"));
  // Give the server time to fill every buffer in the path and hit EAGAIN
  // before the client starts draining.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::string response = client.read_response();

  EXPECT_EQ(response.find("HTTP/1.1 200"), 0u);
  const std::size_t header_end = response.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  const std::string_view body =
      std::string_view(response).substr(header_end + 4);
  const StaticStore::Entry* entry = app->static_store.find("/huge.bin");
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(body.size(), entry->content->size());
  // Byte-exact: any off-by-one in iovec offset accounting corrupts this.
  EXPECT_TRUE(body == *entry->content);

  // The connection state machine must come out of the big transfer clean:
  // keep-alive still works on the same connection.
  const std::string next = client.request(get("/huge.bin"));
  EXPECT_EQ(next.find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(listener.counters().snapshot().keepalive_reuse, 1u);

  listener.stop();
  server.shutdown();
}

// --- the blocking baseline still works (bench comparison path) -------------

TEST_F(TransportTest, BlockingListenerStillServes) {
  StagedServer server(config_, app_, db_);
  BlockingTcpListener listener(server, 0);
  const std::string response = tcp_roundtrip(
      listener.port(), get("/home?c_id=3"));
  EXPECT_EQ(response.find("HTTP/1.1 200"), 0u);
  EXPECT_NE(response.find("Welcome back"), std::string::npos);
  listener.stop();
  server.shutdown();
}

}  // namespace
}  // namespace tempest::server
