// Overload behaviour of the bounded-queue pipeline: with
// OverflowPolicy::kReject a saturated stage sheds requests with
// 503 + Retry-After while requests already admitted still complete; with
// OverflowPolicy::kBlock (the default) producers park and nothing is shed,
// matching the unbounded servers' behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <semaphore>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/server/baseline_server.h"
#include "src/server/staged_server.h"
#include "src/server/transport.h"

namespace tempest::server {
namespace {

class BackpressureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.0002);

    auto app = std::make_shared<Application>();
    app->templates = std::make_shared<tmpl::MemoryLoader>();

    // Occupies its worker thread until the test releases the gate.
    app->router.add("/hold", [this](HandlerContext&) -> HandlerResult {
      holding_.fetch_add(1);
      gate_.acquire();
      return StringResponse{"held"};
    });
    app->router.add("/quick", [](HandlerContext&) -> HandlerResult {
      return StringResponse{"ok"};
    });
    app_ = app;

    // A deliberately tiny general pool: one worker, one queue slot. Unknown
    // pages classify as quick, so every /hold and /quick lands there.
    config_.charge_service_costs = false;
    config_.db_connections = 2;
    config_.baseline_threads = 2;
    config_.header_threads = 2;
    config_.static_threads = 1;
    config_.general_threads = 1;
    config_.lengthy_threads = 1;
    config_.render_threads = 1;
    config_.treserve_min = 1;
    config_.general_queue_capacity = 1;
    config_.retry_after_paper_s = 2.0;
  }

  void TearDown() override { TimeScale::set(0.005); }

  static std::string raw_get(const std::string& path) {
    return "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
  }

  // Blocks until `n` /hold handlers are running, i.e. n workers occupied.
  void wait_for_holders(int n) {
    while (holding_.load() < n) std::this_thread::yield();
  }

  db::Database db_;
  std::shared_ptr<const Application> app_;
  ServerConfig config_;
  std::counting_semaphore<> gate_{0};
  std::atomic<int> holding_{0};
};

TEST_F(BackpressureTest, RejectPolicyShedsWith503AndRetryAfter) {
  config_.overflow_policy = OverflowPolicy::kReject;
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  // First request occupies the single general worker; second fills the
  // one-slot general queue.
  auto held = client.send(raw_get("/hold"));
  wait_for_holders(1);
  auto queued = client.send(raw_get("/hold"));
  while (server.general_queue_length() != 1) std::this_thread::yield();

  // Everything beyond capacity must be shed immediately with 503 and a
  // Retry-After advertising config_.retry_after_paper_s (2 paper-seconds).
  constexpr int kOverflow = 5;
  for (int i = 0; i < kOverflow; ++i) {
    const std::string response = client.roundtrip(raw_get("/quick"));
    EXPECT_EQ(response.find("HTTP/1.1 503"), 0u) << response;
    EXPECT_NE(response.find("Retry-After: 2"), std::string::npos) << response;
  }
  EXPECT_EQ(server.stats().shed_total(), static_cast<std::uint64_t>(kOverflow));
  EXPECT_EQ(server.stats().shed(RequestClass::kQuickDynamic),
            static_cast<std::uint64_t>(kOverflow));

  // In-flight and queued requests were admitted before saturation: they must
  // still complete normally once the workers free up.
  gate_.release(2);
  EXPECT_EQ(held.get().find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(queued.get().find("HTTP/1.1 200"), 0u);
  server.shutdown();

  // Sheds are not completions: the completion counters only saw the two
  // requests that actually ran.
  EXPECT_EQ(server.stats().completed(RequestClass::kQuickDynamic), 2u);
}

TEST_F(BackpressureTest, NoSheddingUnderCapacity) {
  config_.overflow_policy = OverflowPolicy::kReject;
  config_.general_queue_capacity = 16;
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  for (int i = 0; i < 10; ++i) {
    const std::string response = client.roundtrip(raw_get("/quick"));
    EXPECT_EQ(response.find("HTTP/1.1 200"), 0u) << response;
  }
  EXPECT_EQ(server.stats().shed_total(), 0u);
  EXPECT_EQ(server.stats().completed(RequestClass::kQuickDynamic), 10u);
  server.shutdown();
}

TEST_F(BackpressureTest, BlockPolicyQueuesEverythingLikeUnboundedServer) {
  config_.overflow_policy = OverflowPolicy::kBlock;  // the default
  StagedServer server(config_, app_, db_);
  InProcClient client(server);

  // Saturate the worker and the one-slot queue, then pile more on: with
  // kBlock the header threads park instead of shedding, so every request
  // eventually gets a 200 and nothing sees a 503.
  auto held = client.send(raw_get("/hold"));
  wait_for_holders(1);
  std::vector<std::future<std::string>> pending;
  for (int i = 0; i < 6; ++i) pending.push_back(client.send(raw_get("/quick")));

  gate_.release(1);
  EXPECT_EQ(held.get().find("HTTP/1.1 200"), 0u);
  for (auto& f : pending) {
    EXPECT_EQ(f.get().find("HTTP/1.1 200"), 0u);
  }
  EXPECT_EQ(server.stats().shed_total(), 0u);
  server.shutdown();
}

TEST_F(BackpressureTest, BaselineServerShedsWhenBoundedQueueOverflows) {
  config_.overflow_policy = OverflowPolicy::kReject;
  config_.baseline_threads = 1;
  config_.db_connections = 1;
  config_.baseline_queue_capacity = 1;
  BaselineServer server(config_, app_, db_);
  InProcClient client(server);

  auto held = client.send(raw_get("/hold"));
  wait_for_holders(1);
  auto queued = client.send(raw_get("/quick"));

  // The baseline sheds at accept: submit() finds the worker queue full.
  const std::string shed = client.roundtrip(raw_get("/quick"));
  EXPECT_EQ(shed.find("HTTP/1.1 503"), 0u) << shed;
  EXPECT_NE(shed.find("Retry-After: 2"), std::string::npos) << shed;
  EXPECT_GE(server.stats().shed_total(), 1u);

  gate_.release(1);
  EXPECT_EQ(held.get().find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(queued.get().find("HTTP/1.1 200"), 0u);
  server.shutdown();
}

}  // namespace
}  // namespace tempest::server
