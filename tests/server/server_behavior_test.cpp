// Behavioural tests of both server variants against a small custom app:
// handler ABI (unrendered-template vs string returns), dispatch between
// pools, per-thread connections, Content-Length, HEAD, and error paths.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/common/clock.h"
#include "src/http/parser.h"
#include "src/server/baseline_server.h"
#include "src/server/staged_server.h"
#include "src/server/transport.h"

namespace tempest::server {
namespace {

class ServerBehaviorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.0002);

    db::TableSchema schema;
    schema.name = "kv";
    schema.columns = {{"k", db::ColumnType::kInt},
                      {"v", db::ColumnType::kString}};
    schema.primary_key = 0;
    db_.create_table(schema);
    db_.table("kv").insert({db::Value(1), db::Value("one")});

    auto app = std::make_shared<Application>();
    auto loader = std::make_shared<tmpl::MemoryLoader>();
    loader->add("page.html", "<p>{{ value }}</p>");
    app->templates = loader;

    // Paper-style handler: query then return the unrendered template + data.
    app->router.add("/templated", [](HandlerContext& ctx) -> HandlerResult {
      auto rs = ctx.db->execute("SELECT v FROM kv WHERE k = ?",
                                {db::Value(ctx.param_int("k", 1))});
      tmpl::Dict data;
      data["value"] =
          rs.empty() ? tmpl::Value("?") : tmpl::Value(rs.at(0, "v").as_string());
      return TemplateResponse{"page.html", std::move(data)};
    });

    // Backward-compatible handler: returns an already-rendered string.
    app->router.add("/legacy", [](HandlerContext&) -> HandlerResult {
      return StringResponse{"<p>legacy</p>"};
    });

    app->router.add("/boom", [](HandlerContext&) -> HandlerResult {
      throw std::runtime_error("kaboom");
    });

    app->router.add("/badtemplate", [](HandlerContext&) -> HandlerResult {
      return TemplateResponse{"missing.html", {}};
    });

    // Records whether the handler thread had a DB connection.
    app->router.add("/hasconn", [this](HandlerContext& ctx) -> HandlerResult {
      handler_had_connection_.store(ctx.db != nullptr);
      return StringResponse{"checked"};
    });

    app->static_store.add("/style.css", "body{color:red}", "text/css");
    app_ = app;

    config_.db_connections = 6;
    config_.baseline_threads = 6;
    config_.header_threads = 2;
    config_.static_threads = 2;
    config_.general_threads = 4;
    config_.lengthy_threads = 1;
    config_.render_threads = 2;
    config_.treserve_min = 1;
  }

  void TearDown() override { TimeScale::set(0.005); }

  static std::string get(WebServer& server, const std::string& url,
                         const std::string& method = "GET") {
    InProcClient client(server);
    return client.roundtrip(method + " " + url + " HTTP/1.1\r\nHost: x\r\n\r\n");
  }

  db::Database db_;
  std::shared_ptr<const Application> app_;
  ServerConfig config_;
  std::atomic<bool> handler_had_connection_{false};
};

template <typename T>
std::unique_ptr<WebServer> make_server(ServerConfig config,
                                       std::shared_ptr<const Application> app,
                                       db::Database& db) {
  return std::make_unique<T>(config, std::move(app), db);
}

TEST_F(ServerBehaviorTest, TemplatedHandlerRendersOnBothServers) {
  for (const bool staged : {false, true}) {
    std::unique_ptr<WebServer> server =
        staged ? make_server<StagedServer>(config_, app_, db_)
               : make_server<BaselineServer>(config_, app_, db_);
    const std::string response = get(*server, "/templated?k=1");
    EXPECT_EQ(response.find("HTTP/1.1 200"), 0u) << staged;
    EXPECT_NE(response.find("<p>one</p>"), std::string::npos) << staged;
    server->shutdown();
  }
}

TEST_F(ServerBehaviorTest, LegacyStringHandlerStillWorks) {
  // Section 3.1: a handler returning an already-rendered string must be
  // handled properly (without the render-stage optimization).
  for (const bool staged : {false, true}) {
    std::unique_ptr<WebServer> server =
        staged ? make_server<StagedServer>(config_, app_, db_)
               : make_server<BaselineServer>(config_, app_, db_);
    const std::string response = get(*server, "/legacy");
    EXPECT_NE(response.find("<p>legacy</p>"), std::string::npos);
    server->shutdown();
  }
}

TEST_F(ServerBehaviorTest, ContentLengthMatchesRenderedBody) {
  StagedServer server(config_, app_, db_);
  const std::string response = get(server, "/templated?k=1");
  const auto parsed_body_pos = response.find("\r\n\r\n");
  ASSERT_NE(parsed_body_pos, std::string::npos);
  const std::string body = response.substr(parsed_body_pos + 4);
  const std::string expected = "Content-Length: " + std::to_string(body.size());
  EXPECT_NE(response.find(expected), std::string::npos) << response;
  server.shutdown();
}

TEST_F(ServerBehaviorTest, HeadRequestOmitsBody) {
  StagedServer server(config_, app_, db_);
  const std::string response = get(server, "/templated?k=1", "HEAD");
  EXPECT_EQ(response.find("HTTP/1.1 200"), 0u);
  EXPECT_NE(response.find("Content-Length:"), std::string::npos);
  EXPECT_EQ(response.find("\r\n\r\n"), response.size() - 4);
  server.shutdown();
}

TEST_F(ServerBehaviorTest, DynamicThreadsHaveConnectionsOnStagedServer) {
  StagedServer server(config_, app_, db_);
  get(server, "/hasconn");
  EXPECT_TRUE(handler_had_connection_.load());
  server.shutdown();
}

TEST_F(ServerBehaviorTest, WorkerThreadsHaveConnectionsOnBaseline) {
  BaselineServer server(config_, app_, db_);
  get(server, "/hasconn");
  EXPECT_TRUE(handler_had_connection_.load());
  server.shutdown();
}

// Worker threads adopt their connections as they start, concurrently with
// the first request; on a loaded machine the last adoption can trail the
// first response. Wait (bounded) for the count to settle before asserting.
void wait_for_available(db::ConnectionPool& pool, std::size_t want) {
  for (int i = 0; i < 2000 && pool.available() != want; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST_F(ServerBehaviorTest, OnlyDynamicThreadsConsumeConnections) {
  // Staged: general(4) + lengthy(1) of 6 connections are held; header,
  // static, and render threads must not take any.
  StagedServer server(config_, app_, db_);
  get(server, "/templated");  // ensure pools are up
  wait_for_available(server.connection_pool(), 1);
  EXPECT_EQ(server.connection_pool().available(), 1u);
  server.shutdown();
}

TEST_F(ServerBehaviorTest, BaselineHoldsAllConnections) {
  BaselineServer server(config_, app_, db_);
  get(server, "/legacy");
  wait_for_available(server.connection_pool(), 0);
  EXPECT_EQ(server.connection_pool().available(), 0u);
  server.shutdown();
}

TEST_F(ServerBehaviorTest, HandlerExceptionYields500) {
  for (const bool staged : {false, true}) {
    std::unique_ptr<WebServer> server =
        staged ? make_server<StagedServer>(config_, app_, db_)
               : make_server<BaselineServer>(config_, app_, db_);
    EXPECT_EQ(get(*server, "/boom").find("HTTP/1.1 500"), 0u);
    server->shutdown();
  }
}

TEST_F(ServerBehaviorTest, MissingTemplateYields500) {
  StagedServer server(config_, app_, db_);
  EXPECT_EQ(get(server, "/badtemplate").find("HTTP/1.1 500"), 0u);
  server.shutdown();
}

TEST_F(ServerBehaviorTest, MalformedRequestYields400) {
  for (const bool staged : {false, true}) {
    std::unique_ptr<WebServer> server =
        staged ? make_server<StagedServer>(config_, app_, db_)
               : make_server<BaselineServer>(config_, app_, db_);
    InProcClient client(*server);
    EXPECT_EQ(client.roundtrip("NONSENSE\r\n\r\n").find("HTTP/1.1 400"), 0u);
    server->shutdown();
  }
}

TEST_F(ServerBehaviorTest, StaticServedWithMimeType) {
  StagedServer server(config_, app_, db_);
  const std::string response = get(server, "/style.css");
  EXPECT_EQ(response.find("HTTP/1.1 200"), 0u);
  EXPECT_NE(response.find("text/css"), std::string::npos);
  EXPECT_NE(response.find("body{color:red}"), std::string::npos);
  server.shutdown();
}

TEST_F(ServerBehaviorTest, StaticCountedAsStaticClass) {
  StagedServer server(config_, app_, db_);
  get(server, "/style.css");
  get(server, "/templated");
  EXPECT_EQ(server.stats().completed(RequestClass::kStatic), 1u);
  EXPECT_EQ(server.stats().completed(RequestClass::kQuickDynamic), 1u);
  server.shutdown();
}

TEST_F(ServerBehaviorTest, TrackerLearnsFromDataGenerationOnly) {
  // The fixture's 0.0002 scale makes the 2 paper-s lengthy cutoff just
  // ~0.4 wall-ms of data generation — a cold first SELECT under TSan blows
  // through that on timing alone. Classification, not timing resolution, is
  // under test here, so give it a roomier clock.
  TimeScale::set(0.002);
  StagedServer server(config_, app_, db_);
  get(server, "/templated?k=1");
  // Data generation for this page is a single indexed select: far below the
  // lengthy cutoff, so the page must be classified quick even though the
  // whole-request latency includes rendering.
  EXPECT_FALSE(server.tracker().is_lengthy("/templated"));
  EXPECT_GT(server.tracker().mean("/templated"), 0.0);
  server.shutdown();
}

TEST_F(ServerBehaviorTest, ManyConcurrentRequestsAllAnswered) {
  StagedServer server(config_, app_, db_);
  InProcClient client(server);
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 100; ++i) {
    const std::string url =
        i % 3 == 0 ? "/style.css" : (i % 3 == 1 ? "/templated?k=1" : "/legacy");
    futures.push_back(
        client.send("GET " + url + " HTTP/1.1\r\nHost: x\r\n\r\n"));
  }
  int ok = 0;
  for (auto& f : futures) {
    if (f.get().find("HTTP/1.1 200") == 0) ++ok;
  }
  EXPECT_EQ(ok, 100);
  server.shutdown();
}

TEST_F(ServerBehaviorTest, ShutdownIsIdempotentAndDrains) {
  auto server = std::make_unique<StagedServer>(config_, app_, db_);
  get(*server, "/templated");
  server->shutdown();
  server->shutdown();
  server.reset();  // destructor after explicit shutdown must be safe
}

TEST_F(ServerBehaviorTest, BaselineRejectsMoreThreadsThanConnections) {
  ServerConfig bad = config_;
  bad.baseline_threads = bad.db_connections + 1;
  EXPECT_THROW(BaselineServer(bad, app_, db_), std::invalid_argument);
}

TEST_F(ServerBehaviorTest, StagedRejectsDynamicThreadsExceedingConnections) {
  ServerConfig bad = config_;
  bad.general_threads = 10;
  bad.lengthy_threads = 10;
  EXPECT_THROW(StagedServer(bad, app_, db_), std::invalid_argument);
}

TEST_F(ServerBehaviorTest, MergedPoolAblationServesRequests) {
  ServerConfig merged = config_;
  merged.split_dynamic_pools = false;
  StagedServer server(merged, app_, db_);
  EXPECT_EQ(get(server, "/templated?k=1").find("HTTP/1.1 200"), 0u);
  server.shutdown();
}

}  // namespace
}  // namespace tempest::server
