// Zero-copy response-path verification: payload chunking (fill_iov over
// every offset), body references that alias the StaticStore / ResponseCache
// / render-buffer-pool storage instead of copying it, and — with the
// operator-new interposer from bench/alloc_interpose.cpp linked into this
// binary — allocation counts proving static and cache-hit responses copy
// zero body bytes.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>

#include "bench/alloc_counter.h"
#include "src/common/clock.h"
#include "src/common/render_buffer.h"
#include "src/db/database.h"
#include "src/http/uri.h"
#include "src/server/outbound.h"
#include "src/server/response_cache.h"
#include "src/server/staged_server.h"
#include "src/server/transport.h"
#include "src/template/loader.h"

namespace tempest::server {
namespace {

// ---------------------------------------------------------------------------
// OutboundPayload chunk bookkeeping
// ---------------------------------------------------------------------------

TEST(OutboundPayloadTest, FillIovCoversEveryOffset) {
  OutboundPayload payload;
  payload.head = "HEAD";
  payload.body_owned = "BODYBYTES";
  const std::string wire = payload.flatten();
  ASSERT_EQ(wire, "HEADBODYBYTES");
  ASSERT_EQ(payload.size(), wire.size());

  // Reassemble the wire image from every possible partial-write offset; any
  // bookkeeping error at the chunk seam shows up as a mismatch.
  for (std::size_t offset = 0; offset <= wire.size(); ++offset) {
    iovec iov[2];
    const std::size_t n = payload.fill_iov(offset, iov);
    std::string rest;
    for (std::size_t i = 0; i < n; ++i) {
      rest.append(static_cast<const char*>(iov[i].iov_base), iov[i].iov_len);
    }
    EXPECT_EQ(rest, wire.substr(offset)) << "offset " << offset;
    if (offset == wire.size()) {
      EXPECT_EQ(n, 0u);
    }
  }
}

TEST(OutboundPayloadTest, FillIovUsesTwoChunksBeforeSeamOneAfter) {
  OutboundPayload payload;
  payload.head = "AAAA";
  payload.body_shared = std::make_shared<const std::string>("BBBB");
  iovec iov[2];
  EXPECT_EQ(payload.fill_iov(0, iov), 2u);
  EXPECT_EQ(payload.fill_iov(3, iov), 2u);
  EXPECT_EQ(payload.fill_iov(4, iov), 1u);  // exactly at the seam
  EXPECT_EQ(payload.fill_iov(7, iov), 1u);
  EXPECT_EQ(payload.fill_iov(8, iov), 0u);
}

TEST(OutboundPayloadTest, EmptyBodyPayloadIsHeadOnly) {
  OutboundPayload payload;
  payload.head = "only";
  iovec iov[2];
  EXPECT_EQ(payload.fill_iov(0, iov), 1u);
  EXPECT_EQ(payload.size(), 4u);
  EXPECT_EQ(payload.flatten(), "only");
}

TEST(OutboundPayloadTest, FillIovHandlesManyChunksAndSmallIovCaps) {
  // A fragment-spliced response: rendered segments interleaved with cached
  // fragment bodies. Reassemble from every offset, both with the full iovec
  // budget and with max_iov=1 (the flush loop re-enters at the new offset),
  // and the wire image must come out identical.
  OutboundPayload payload;
  payload.head = "HEAD:";
  const auto own = [](const char* s) {
    auto p = std::make_shared<const std::string>(s);
    return http::BodyChunk{p, *p};
  };
  payload.body_chunks = {own("seg1"), own("FRAG-A"), own("s2"), own("FRAG-B"),
                         own("tail")};
  const std::string wire = payload.flatten();
  ASSERT_EQ(wire, "HEAD:seg1FRAG-As2FRAG-Btail");
  ASSERT_EQ(payload.size(), wire.size());

  for (std::size_t max_iov : {std::size_t{1}, OutboundPayload::kMaxIov}) {
    for (std::size_t offset = 0; offset <= wire.size(); ++offset) {
      std::string rest;
      std::size_t at = offset;
      for (;;) {
        iovec iov[OutboundPayload::kMaxIov];
        const std::size_t n = payload.fill_iov(at, iov, max_iov);
        if (n == 0) break;
        EXPECT_LE(n, max_iov);
        for (std::size_t i = 0; i < n; ++i) {
          rest.append(static_cast<const char*>(iov[i].iov_base),
                      iov[i].iov_len);
          at += iov[i].iov_len;
        }
      }
      EXPECT_EQ(rest, wire.substr(offset))
          << "offset " << offset << " max_iov " << max_iov;
    }
  }
}

TEST(MakePayloadTest, SharedBodyRidesByReference) {
  auto body = std::make_shared<const std::string>("shared entity");
  const std::string* raw = body.get();
  http::Response response =
      http::Response::from_shared(http::Status::kOk, body, "text/plain");
  OutboundPayload payload =
      make_payload(std::move(response), /*head_only=*/false,
                   http::ConnectionDirective::kNone);
  EXPECT_EQ(payload.body_shared.get(), raw);  // the same bytes, not a copy
  EXPECT_NE(payload.head.find("Content-Length: 13"), std::string::npos);
  EXPECT_EQ(payload.flatten().substr(payload.head.size()), "shared entity");
}

TEST(MakePayloadTest, HeadOnlyElidesBodyButKeepsEntityLength) {
  http::Response response =
      http::Response::make(http::Status::kOk, "0123456789");
  OutboundPayload payload =
      make_payload(std::move(response), /*head_only=*/true,
                   http::ConnectionDirective::kKeepAlive);
  EXPECT_EQ(payload.body().size(), 0u);
  EXPECT_NE(payload.head.find("Content-Length: 10"), std::string::npos);
}

TEST(MakePayloadTest, LegacyModeFlattensToSingleChunk) {
  auto body = std::make_shared<const std::string>("entity");
  http::Response response =
      http::Response::from_shared(http::Status::kOk, body, "text/plain");
  OutboundPayload payload =
      make_payload(std::move(response), /*head_only=*/false,
                   http::ConnectionDirective::kClose, /*zero_copy=*/false);
  EXPECT_EQ(payload.body_shared, nullptr);
  EXPECT_TRUE(payload.body_owned.empty());
  EXPECT_NE(payload.head.find("\r\n\r\nentity"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end body aliasing through the staged server
// ---------------------------------------------------------------------------

// Captures the payload a server sends, before any flattening.
struct CaptureWriter : ResponseWriter {
  std::promise<OutboundPayload> promise;
  void send(OutboundPayload payload) override {
    promise.set_value(std::move(payload));
  }
};

class ZeroCopyServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.0002);

    auto app = std::make_shared<Application>();
    auto loader = std::make_shared<tmpl::MemoryLoader>();
    loader->add("page.html", "<p>{{ value }}</p>");
    app->templates = loader;
    app->router.add(
        "/page",
        [](HandlerContext& ctx) -> HandlerResult {
          tmpl::Dict data;
          data["value"] = tmpl::Value(ctx.param("v", "x"));
          return TemplateResponse{"page.html", std::move(data)};
        },
        CachePolicy{});
    app->static_store.add_blob("/small.bin", 4 << 10, "image/gif");
    app->static_store.add_blob("/big.bin", 256 << 10, "image/gif");
    app_ = app;

    config_.db_connections = 4;
    config_.header_threads = 1;
    config_.static_threads = 1;
    config_.general_threads = 3;
    config_.lengthy_threads = 1;
    config_.render_threads = 1;
    config_.treserve_min = 1;
    config_.charge_service_costs = false;
  }

  void TearDown() override { TimeScale::set(0.005); }

  static OutboundPayload fetch(WebServer& server, const std::string& target,
                               const std::string& method = "GET",
                               const std::string& extra = "") {
    auto writer = std::make_shared<CaptureWriter>();
    std::future<OutboundPayload> future = writer->promise.get_future();
    IncomingRequest incoming;
    incoming.raw =
        method + " " + target + " HTTP/1.1\r\nHost: x\r\n" + extra + "\r\n";
    incoming.writer = writer;
    server.submit(std::move(incoming));
    return future.get();
  }

  std::shared_ptr<const Application> app_;
  ServerConfig config_;
  db::Database db_;
};

TEST_F(ZeroCopyServerTest, StaticBodyAliasesStoreEntry) {
  StagedServer server(config_, app_, db_);
  OutboundPayload payload = fetch(server, "/big.bin");
  const StaticStore::Entry* entry = app_->static_store.find("/big.bin");
  ASSERT_NE(entry, nullptr);
  ASSERT_NE(payload.body_shared, nullptr);
  // Pointer identity: the response references the store's string itself.
  EXPECT_EQ(payload.body_shared.get(), entry->content.get());
  EXPECT_EQ(payload.size(), payload.head.size() + entry->content->size());
}

TEST_F(ZeroCopyServerTest, CacheHitBodyAliasesCacheEntry) {
  config_.cache.enabled = true;
  StagedServer server(config_, app_, db_);

  OutboundPayload miss = fetch(server, "/page?v=hot");
  EXPECT_NE(miss.head.find("X-Cache: miss"), std::string::npos);

  OutboundPayload hit = fetch(server, "/page?v=hot");
  ASSERT_NE(hit.head.find("X-Cache: hit"), std::string::npos);
  ASSERT_NE(hit.body_shared, nullptr);

  http::QueryDict query = http::parse_query("v=hot");
  const std::string key = ResponseCache::make_key("/page", query, CachePolicy{});
  auto stored = server.cache()->find(key, paper_now());
  ASSERT_NE(stored, nullptr);
  // The hit's body is the cached string itself (aliasing shared_ptr), and it
  // shares ownership with the cache entry rather than copying it.
  EXPECT_EQ(hit.body_shared->data(), stored->body.data());
  EXPECT_EQ(std::string(*hit.body_shared), stored->body);
}

TEST_F(ZeroCopyServerTest, RenderedBodyComesFromBufferPool) {
  StagedServer server(config_, app_, db_);
  const auto before = RenderBufferPool::instance().counters();

  OutboundPayload first = fetch(server, "/page?v=one");
  ASSERT_NE(first.body_shared, nullptr);
  EXPECT_EQ(*first.body_shared, "<p>one</p>");
  first = OutboundPayload{};  // drop: buffer returns to the pool

  OutboundPayload second = fetch(server, "/page?v=two");
  ASSERT_NE(second.body_shared, nullptr);
  EXPECT_EQ(*second.body_shared, "<p>two</p>");
  second = OutboundPayload{};

  const auto after = RenderBufferPool::instance().counters();
  EXPECT_EQ(after.acquires - before.acquires, 2u);
  // The second render reused the buffer the first one returned.
  EXPECT_GE(after.reuses - before.reuses, 1u);
}

TEST_F(ZeroCopyServerTest, HeadRequestCarriesNoBodyChunk) {
  StagedServer server(config_, app_, db_);
  OutboundPayload payload = fetch(server, "/big.bin", "HEAD");
  EXPECT_EQ(payload.body().size(), 0u);
  EXPECT_NE(payload.head.find("Content-Length: 262144"), std::string::npos);
}

TEST_F(ZeroCopyServerTest, LegacyModeStillServesIdenticalBytes) {
  config_.zero_copy_responses = false;
  StagedServer legacy_server(config_, app_, db_);
  ServerConfig zc = config_;
  zc.zero_copy_responses = true;
  StagedServer zc_server(zc, app_, db_);

  for (const std::string target : {"/small.bin", "/page?v=same"}) {
    OutboundPayload a = fetch(legacy_server, target);
    OutboundPayload b = fetch(zc_server, target);
    EXPECT_EQ(a.body_shared, nullptr) << target;  // legacy = one flat chunk
    // Identical entities either way (Date header may differ by a second, so
    // compare the entity bytes, not the whole wire image).
    const std::string wa = a.flatten();
    const std::string wb = b.flatten();
    EXPECT_EQ(wa.substr(wa.find("\r\n\r\n")), wb.substr(wb.find("\r\n\r\n")))
        << target;
  }
}

// ---------------------------------------------------------------------------
// Fragment splices: cached fragment bytes ride by reference
// ---------------------------------------------------------------------------

class FragmentSpliceTest : public ZeroCopyServerTest {
 protected:
  // `filler` bytes of literal template text inside a {% cache %} marker, so a
  // miss renders it and a hit must splice the stored bytes.
  void use_fragment_app(std::size_t filler) {
    auto app = std::make_shared<Application>();
    auto loader = std::make_shared<tmpl::MemoryLoader>();
    loader->add("frag.html", "v={{ v }}|{% cache frag ttl=100000 %}" +
                                 std::string(filler, 'x') + "{% endcache %}|t");
    app->templates = loader;
    app->router.add("/frag", [](HandlerContext& ctx) -> HandlerResult {
      tmpl::Dict data;
      data["v"] = tmpl::Value(ctx.param("v", "x"));
      return TemplateResponse{"frag.html", std::move(data)};
    });
    app_ = app;
    config_.fragment_cache.enabled = true;
  }
};

TEST_F(FragmentSpliceTest, SplicedChunkAliasesTheCachedFragment) {
  use_fragment_app(32);
  StagedServer server(config_, app_, db_);

  OutboundPayload miss = fetch(server, "/frag?v=1");
  EXPECT_FALSE(miss.chunked());  // no splice on the miss render

  OutboundPayload hit1 = fetch(server, "/frag?v=2");
  OutboundPayload hit2 = fetch(server, "/frag?v=3");
  ASSERT_TRUE(hit1.chunked());
  ASSERT_TRUE(hit2.chunked());

  const std::string frag(32, 'x');
  const auto frag_chunk = [&](const OutboundPayload& p) -> const char* {
    for (const auto& chunk : p.body_chunks) {
      if (chunk.bytes == frag) return chunk.bytes.data();
    }
    return nullptr;
  };
  const char* a = frag_chunk(hit1);
  const char* b = frag_chunk(hit2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Both hits point at the same stored bytes: the cache entry itself, not
  // per-response copies.
  EXPECT_EQ(a, b);

  // And the full wire image is still exactly the page.
  const std::string wire = hit2.flatten();
  EXPECT_NE(wire.find("v=3|" + frag + "|t"), std::string::npos);
  EXPECT_EQ(server.stats().fragments().snapshot().splices, 2u);
}

TEST_F(FragmentSpliceTest, FragmentHitsCopyZeroFragmentBytes) {
  ASSERT_TRUE(bench::alloc_counting_enabled());
  constexpr std::size_t kFragBytes = 64 << 10;
  use_fragment_app(kFragBytes);
  StagedServer server(config_, app_, db_);

  // Warm up: the first request renders and stores the fragment; later ones
  // splice it. Warm until buffer pools and queues reach steady state.
  for (int i = 0; i < 20; ++i) {
    (void)fetch(server, "/frag?v=w");
  }

  constexpr int kRequests = 100;
  const auto before = bench::alloc_counts();
  for (int i = 0; i < kRequests; ++i) {
    (void)fetch(server, "/frag?v=h");
  }
  const auto delta = bench::alloc_counts() - before;

  const double bytes_per_request =
      static_cast<double>(delta.bytes) / kRequests;
  // A single copy of the fragment would cost >= 64 KiB per request; the
  // splice path allocates only small control structures.
  EXPECT_LT(bytes_per_request, kFragBytes / 8.0)
      << "per-request heap bytes suggest the fragment is being copied";
  // 1 miss then 19 + 100 hits.
  EXPECT_EQ(server.stats().fragments().snapshot().hits_total(), 119u);
}

// ---------------------------------------------------------------------------
// Allocation counting: zero body copies, verified
// ---------------------------------------------------------------------------

TEST_F(ZeroCopyServerTest, StaticResponsesCopyZeroBodyBytes) {
  ASSERT_TRUE(bench::alloc_counting_enabled());
  StagedServer server(config_, app_, db_);

  // Warm up: first touches populate parser scratch, pool queues, etc.
  for (int i = 0; i < 20; ++i) {
    (void)fetch(server, "/big.bin");
  }

  constexpr int kRequests = 100;
  const auto before = bench::alloc_counts();
  for (int i = 0; i < kRequests; ++i) {
    (void)fetch(server, "/big.bin");
  }
  const auto delta = bench::alloc_counts() - before;

  const double bytes_per_request =
      static_cast<double>(delta.bytes) / kRequests;
  const double body_size = 256 << 10;
  // A single body copy per request would show up as >= 256 KiB per request;
  // the whole zero-copy request path allocates a small fraction of that
  // (request string, header block, queue nodes, control blocks).
  EXPECT_LT(bytes_per_request, body_size / 8)
      << "per-request heap bytes suggest the body is being copied";
}

TEST_F(ZeroCopyServerTest, StaticAllocCountIsBodySizeIndependent) {
  ASSERT_TRUE(bench::alloc_counting_enabled());
  StagedServer server(config_, app_, db_);
  constexpr int kRequests = 100;

  const auto measure = [&](const std::string& target) {
    for (int i = 0; i < 20; ++i) (void)fetch(server, target);
    const auto before = bench::alloc_counts();
    for (int i = 0; i < kRequests; ++i) {
      (void)fetch(server, target);
    }
    const auto delta = bench::alloc_counts() - before;
    return static_cast<double>(delta.count) / kRequests;
  };

  const double small = measure("/small.bin");
  const double big = measure("/big.bin");
  // Zero-copy: a 64x larger body must not change the allocation count per
  // request in any size-proportional way (copying would at least add the
  // doubling-growth allocations of a 256 KiB string).
  EXPECT_LT(big, small * 1.5 + 8.0);
}

}  // namespace
}  // namespace tempest::server
