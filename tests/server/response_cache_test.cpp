// Render-output cache: key derivation, TTL/LRU/byte-cap mechanics, prefix
// invalidation, conditional GET at both layers (static store validators and
// cached dynamic pages), and the staged-server integration — a hit must
// short-circuit before the dynamic pools and a TPC-W buy must invalidate the
// catalog pages it staled.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/http/parser.h"
#include "src/server/baseline_server.h"
#include "src/server/response_cache.h"
#include "src/server/staged_server.h"
#include "src/server/transport.h"
#include "src/tpcw/handlers.h"
#include "src/tpcw/populate.h"

namespace tempest::server {
namespace {

ResponseCache::CachedResponse page(const std::string& body) {
  ResponseCache::CachedResponse r;
  r.body = body;
  r.content_type = "text/html";
  r.etag = http::strong_etag(body);
  return r;
}

// --- key derivation ----------------------------------------------------------

TEST(ResponseCacheKeyTest, PathOnlyWhenQueryIgnored) {
  CachePolicy policy;
  policy.vary_on_query = false;
  const auto query = http::parse_query("b=2&a=1");
  EXPECT_EQ(ResponseCache::make_key("/p", query, policy), "/p");
}

TEST(ResponseCacheKeyTest, QueryOrderDoesNotMatter) {
  CachePolicy policy;
  const auto forward = http::parse_query("a=1&b=2");
  const auto backward = http::parse_query("b=2&a=1");
  EXPECT_EQ(ResponseCache::make_key("/p", forward, policy),
            ResponseCache::make_key("/p", backward, policy));
  EXPECT_EQ(ResponseCache::make_key("/p", forward, policy), "/p?a=1&b=2");
}

TEST(ResponseCacheKeyTest, VaryParamsFilterTheKey) {
  CachePolicy policy;
  policy.vary_params = {"subject", "c_id"};
  const auto query = http::parse_query("subject=ARTS&session=xyz&c_id=3");
  EXPECT_EQ(ResponseCache::make_key("/best_sellers", query, policy),
            "/best_sellers?c_id=3&subject=ARTS");
}

TEST(ResponseCacheKeyTest, KeysStartWithThePath) {
  // invalidate(prefix) depends on this.
  CachePolicy policy;
  const auto query = http::parse_query("x=1");
  const std::string key = ResponseCache::make_key("/page", query, policy);
  EXPECT_EQ(key.rfind("/page", 0), 0u);
}

// --- TTL / LRU / caps --------------------------------------------------------

TEST(ResponseCacheTest, TtlExpiryObservedAtLookup) {
  CacheConfig config;
  config.enabled = true;
  CacheCounters counters;
  ResponseCache cache(config, &counters);
  CachePolicy policy;
  policy.ttl_paper_s = 10.0;

  cache.insert("/p", page("body"), policy, /*now=*/0.0);
  EXPECT_NE(cache.find("/p", 5.0), nullptr);
  EXPECT_EQ(cache.find("/p", 10.0), nullptr);  // deadline is exclusive
  EXPECT_EQ(cache.size(), 0u);                 // expired entry was dropped
  EXPECT_EQ(counters.snapshot().expirations, 1u);
}

TEST(ResponseCacheTest, AllowStaleReturnsExpiredEntryWithoutDropping) {
  // Degraded-mode lookups: while the DB is faulting, an expired entry may be
  // the only copy of the page we can serve, so allow_stale hands it out AND
  // keeps it cached for the next degraded request (no expiration recorded).
  CacheConfig config;
  config.enabled = true;
  CacheCounters counters;
  ResponseCache cache(config, &counters);
  CachePolicy policy;
  policy.ttl_paper_s = 10.0;
  cache.insert("/p", page("old"), policy, 0.0);

  bool stale = true;
  ASSERT_NE(cache.find("/p", 5.0, /*allow_stale=*/true, &stale), nullptr);
  EXPECT_FALSE(stale);  // fresh hits are not flagged

  const auto hit = cache.find("/p", 20.0, /*allow_stale=*/true, &stale);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(stale);
  EXPECT_EQ(hit->body, "old");
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(counters.snapshot().expirations, 0u);

  // The strict lookup still expires it for real once the DB is healthy.
  EXPECT_EQ(cache.find("/p", 20.0), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(counters.snapshot().expirations, 1u);
}

TEST(ResponseCacheTest, DefaultTtlAppliesWhenPolicyHasNone) {
  CacheConfig config;
  config.default_ttl_paper_s = 2.0;
  ResponseCache cache(config);
  cache.insert("/p", page("body"), CachePolicy{}, 0.0);
  EXPECT_NE(cache.find("/p", 1.0), nullptr);
  EXPECT_EQ(cache.find("/p", 3.0), nullptr);
}

TEST(ResponseCacheTest, LruEvictionAtByteCap) {
  CacheConfig config;
  config.shards = 1;  // deterministic: every key shares one LRU
  config.max_entries = 100;
  config.max_bytes = 3 * (2 + 100);  // room for three (key + 100-byte body)
  CacheCounters counters;
  ResponseCache cache(config, &counters);
  CachePolicy policy;
  policy.ttl_paper_s = 1000.0;

  const std::string body(100, 'x');
  cache.insert("/a", page(body), policy, 0.0);
  cache.insert("/b", page(body), policy, 0.0);
  cache.insert("/c", page(body), policy, 0.0);
  EXPECT_EQ(cache.size(), 3u);

  // Touch /a so /b is the least recently used, then overflow the byte cap.
  EXPECT_NE(cache.find("/a", 1.0), nullptr);
  cache.insert("/d", page(body), policy, 1.0);

  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.find("/b", 2.0), nullptr);  // evicted
  EXPECT_NE(cache.find("/a", 2.0), nullptr);
  EXPECT_NE(cache.find("/c", 2.0), nullptr);
  EXPECT_NE(cache.find("/d", 2.0), nullptr);
  EXPECT_EQ(counters.snapshot().evictions, 1u);
}

TEST(ResponseCacheTest, EntryCapEvictsLeastRecentlyUsed) {
  CacheConfig config;
  config.shards = 1;
  config.max_entries = 2;
  CacheCounters counters;
  ResponseCache cache(config, &counters);
  CachePolicy policy;
  policy.ttl_paper_s = 1000.0;

  cache.insert("/a", page("1"), policy, 0.0);
  cache.insert("/b", page("2"), policy, 0.0);
  cache.insert("/c", page("3"), policy, 0.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find("/a", 1.0), nullptr);
  EXPECT_EQ(counters.snapshot().evictions, 1u);
}

TEST(ResponseCacheTest, OversizedResponseIsNotCached) {
  CacheConfig config;
  config.shards = 1;
  config.max_bytes = 64;
  ResponseCache cache(config);
  cache.insert("/big", page(std::string(1000, 'x')), CachePolicy{}, 0.0);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find("/big", 0.0), nullptr);
}

TEST(ResponseCacheTest, ReinsertReplacesInPlace) {
  CacheConfig config;
  ResponseCache cache(config);
  CachePolicy policy;
  policy.ttl_paper_s = 1000.0;
  cache.insert("/p", page("old"), policy, 0.0);
  cache.insert("/p", page("new"), policy, 1.0);
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.find("/p", 2.0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->body, "new");
}

TEST(ResponseCacheTest, InvalidatePrefixDropsAllVariants) {
  CacheConfig config;
  CacheCounters counters;
  ResponseCache cache(config, &counters);
  CachePolicy policy;
  policy.ttl_paper_s = 1000.0;
  cache.insert("/best_sellers?subject=ARTS", page("a"), policy, 0.0);
  cache.insert("/best_sellers?subject=BIO", page("b"), policy, 0.0);
  cache.insert("/home", page("h"), policy, 0.0);

  EXPECT_EQ(cache.invalidate("/best_sellers"), 2u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.find("/home", 1.0), nullptr);
  EXPECT_EQ(counters.snapshot().invalidations, 2u);
  EXPECT_EQ(cache.invalidate("/best_sellers"), 0u);
}

TEST(ResponseCacheTest, HitStaysValidAfterInvalidation) {
  // find() hands out shared ownership: dropping the entry mid-flight must not
  // pull the body out from under a hit still being serialized.
  ResponseCache cache(CacheConfig{});
  CachePolicy policy;
  policy.ttl_paper_s = 1000.0;
  cache.insert("/p", page("still here"), policy, 0.0);
  const auto hit = cache.find("/p", 1.0);
  ASSERT_NE(hit, nullptr);
  cache.invalidate("/p");
  EXPECT_EQ(hit->body, "still here");
}

TEST(ResponseCacheTest, ConcurrentHitInsertInvalidateHammer) {
  CacheConfig config;
  config.shards = 4;
  config.max_entries = 64;
  CacheCounters counters;
  ResponseCache cache(config, &counters);
  CachePolicy policy;
  policy.ttl_paper_s = 1000.0;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        const std::string key = "/p" + std::to_string((t * 7 + i) % 16);
        if (auto hit = cache.find(key, 1.0)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          EXPECT_FALSE(hit->body.empty());
        } else {
          cache.insert(key, page("body " + key), policy, 1.0);
        }
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load()) {
      cache.invalidate("/p1");
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < 4; ++t) threads[t].join();
  stop.store(true);
  threads.back().join();

  EXPECT_GT(hits.load(), 0u);
  EXPECT_LE(cache.size(), 64u);
}

// --- ETag helpers ------------------------------------------------------------

TEST(EtagTest, StrongEtagIsDeterministicAndBodySensitive) {
  const std::string a = http::strong_etag("hello");
  EXPECT_EQ(a, http::strong_etag("hello"));
  EXPECT_NE(a, http::strong_etag("hello!"));
  EXPECT_EQ(a.front(), '"');
  EXPECT_EQ(a.back(), '"');
}

TEST(EtagTest, IfNoneMatchForms) {
  const std::string etag = http::strong_etag("body");
  EXPECT_TRUE(http::etag_matches(etag, etag));
  EXPECT_TRUE(http::etag_matches("*", etag));
  EXPECT_TRUE(http::etag_matches("\"zzz\", " + etag, etag));
  EXPECT_TRUE(http::etag_matches("W/" + etag, etag));
  EXPECT_FALSE(http::etag_matches("\"zzz\"", etag));
  EXPECT_FALSE(http::etag_matches("", etag));
}

// --- server integration ------------------------------------------------------

class CacheServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.0002);

    auto app = std::make_shared<Application>();
    auto loader = std::make_shared<tmpl::MemoryLoader>();
    loader->add("page.html", "<p>render {{ n }}</p>");
    app->templates = loader;

    CachePolicy policy;
    policy.ttl_paper_s = 1000.0;
    app->router.add(
        "/counted",
        [this](HandlerContext&) -> HandlerResult {
          const int n = handler_calls_.fetch_add(1) + 1;
          tmpl::Dict data;
          data["n"] = tmpl::Value(n);
          return TemplateResponse{"page.html", std::move(data)};
        },
        policy);
    app->router.add("/uncached", [this](HandlerContext&) -> HandlerResult {
      handler_calls_.fetch_add(1);
      return TemplateResponse{"page.html", {}};
    });
    app->router.add("/write", [](HandlerContext& ctx) -> HandlerResult {
      ctx.invalidate("/counted");
      return StringResponse{"written"};
    });

    app->static_store.add("/style.css", "body{color:red}", "text/css");
    app_ = app;

    config_.db_connections = 6;
    config_.header_threads = 2;
    config_.static_threads = 2;
    config_.general_threads = 4;
    config_.lengthy_threads = 1;
    config_.render_threads = 2;
    config_.treserve_min = 1;
    config_.charge_service_costs = false;
    config_.cache.enabled = true;
  }

  void TearDown() override { TimeScale::set(0.005); }

  static std::string get(WebServer& server, const std::string& url,
                         const std::string& extra_headers = "") {
    InProcClient client(server);
    return client.roundtrip("GET " + url + " HTTP/1.1\r\nHost: x\r\n" +
                            extra_headers + "\r\n");
  }

  static std::string header_value(const std::string& response,
                                  const std::string& name) {
    const std::string needle = name + ": ";
    const auto pos = response.find(needle);
    if (pos == std::string::npos) return "";
    const auto end = response.find("\r\n", pos);
    return response.substr(pos + needle.size(), end - pos - needle.size());
  }

  db::Database db_;
  std::shared_ptr<const Application> app_;
  ServerConfig config_;
  std::atomic<int> handler_calls_{0};
};

TEST_F(CacheServerTest, SecondRequestIsServedFromCache) {
  StagedServer server(config_, app_, db_);
  const std::string first = get(server, "/counted?q=1");
  EXPECT_EQ(first.find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(header_value(first, "X-Cache"), "miss");
  EXPECT_NE(first.find("render 1"), std::string::npos);

  const std::string second = get(server, "/counted?q=1");
  EXPECT_EQ(second.find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(header_value(second, "X-Cache"), "hit");
  // The cached render, byte-for-byte: the handler ran exactly once.
  EXPECT_NE(second.find("render 1"), std::string::npos);
  EXPECT_EQ(handler_calls_.load(), 1);

  const auto cache = server.stats().cache().snapshot();
  EXPECT_EQ(cache.hits_total(), 1u);
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.inserts, 1u);
  server.shutdown();
}

TEST_F(CacheServerTest, DifferentQueryIsADifferentEntry) {
  StagedServer server(config_, app_, db_);
  get(server, "/counted?q=1");
  get(server, "/counted?q=2");
  EXPECT_EQ(handler_calls_.load(), 2);
  EXPECT_EQ(server.stats().cache().snapshot().misses, 2u);
  server.shutdown();
}

TEST_F(CacheServerTest, RoutesWithoutPolicyAreNeverCached) {
  StagedServer server(config_, app_, db_);
  get(server, "/uncached");
  get(server, "/uncached");
  EXPECT_EQ(handler_calls_.load(), 2);
  const auto cache = server.stats().cache().snapshot();
  EXPECT_EQ(cache.hits_total(), 0u);
  EXPECT_EQ(cache.misses, 0u);  // not even a cacheable lookup
  server.shutdown();
}

TEST_F(CacheServerTest, CacheDisabledIsTheUncachedPipeline) {
  config_.cache.enabled = false;
  StagedServer server(config_, app_, db_);
  const std::string first = get(server, "/counted");
  EXPECT_EQ(header_value(first, "X-Cache"), "");
  get(server, "/counted");
  EXPECT_EQ(handler_calls_.load(), 2);
  server.shutdown();
}

TEST_F(CacheServerTest, WriteHandlerInvalidatesCachedPage) {
  StagedServer server(config_, app_, db_);
  get(server, "/counted");
  get(server, "/counted");
  EXPECT_EQ(handler_calls_.load(), 1);

  get(server, "/write");
  const std::string after = get(server, "/counted");
  EXPECT_EQ(header_value(after, "X-Cache"), "miss");
  EXPECT_NE(after.find("render 2"), std::string::npos);  // fresh render
  EXPECT_EQ(handler_calls_.load(), 2);
  EXPECT_EQ(server.stats().cache().snapshot().invalidations, 1u);
  server.shutdown();
}

TEST_F(CacheServerTest, CachedPageAnswersConditionalGetWith304) {
  StagedServer server(config_, app_, db_);
  const std::string first = get(server, "/counted");
  const std::string etag = header_value(first, "ETag");
  ASSERT_FALSE(etag.empty());

  const std::string conditional =
      get(server, "/counted", "If-None-Match: " + etag + "\r\n");
  EXPECT_EQ(conditional.find("HTTP/1.1 304"), 0u);
  EXPECT_EQ(header_value(conditional, "Content-Length"), "0");
  EXPECT_EQ(server.stats().cache().snapshot().not_modified, 1u);
  server.shutdown();
}

TEST_F(CacheServerTest, CacheHitAppearsAsItsOwnStage) {
  StagedServer server(config_, app_, db_);
  get(server, "/counted");
  get(server, "/counted");
  bool saw_cache_stage = false;
  for (const auto& row : server.stats().stage_breakdown()) {
    if (row.stage == Stage::kCache) {
      saw_cache_stage = true;
      EXPECT_GE(row.service.count, 1u);
    }
  }
  EXPECT_TRUE(saw_cache_stage);
  server.shutdown();
}

TEST_F(CacheServerTest, StaticEtagRoundTripOnBothServers) {
  config_.baseline_threads = 6;
  for (const bool staged : {false, true}) {
    std::unique_ptr<WebServer> server;
    if (staged) {
      server = std::make_unique<StagedServer>(config_, app_, db_);
    } else {
      server = std::make_unique<BaselineServer>(config_, app_, db_);
    }
    const std::string first = get(*server, "/style.css");
    EXPECT_EQ(first.find("HTTP/1.1 200"), 0u) << staged;
    const std::string etag = header_value(first, "ETag");
    const std::string last_modified = header_value(first, "Last-Modified");
    ASSERT_FALSE(etag.empty()) << staged;
    ASSERT_FALSE(last_modified.empty()) << staged;

    const std::string by_etag =
        get(*server, "/style.css", "If-None-Match: " + etag + "\r\n");
    EXPECT_EQ(by_etag.find("HTTP/1.1 304"), 0u) << staged;

    const std::string by_date = get(
        *server, "/style.css", "If-Modified-Since: " + last_modified + "\r\n");
    EXPECT_EQ(by_date.find("HTTP/1.1 304"), 0u) << staged;

    // A stale validator still gets the full body.
    const std::string stale =
        get(*server, "/style.css", "If-None-Match: \"nope\"\r\n");
    EXPECT_EQ(stale.find("HTTP/1.1 200"), 0u) << staged;
    EXPECT_NE(stale.find("body{color:red}"), std::string::npos) << staged;
    server->shutdown();
  }
}

// A TPC-W buy must leave the catalog fresh: best-sellers is cached until
// buy_confirm's writes invalidate it.
TEST(TpcwCacheTest, BuyConfirmInvalidatesBestSellers) {
  TimeScale::set(0.0002);
  db::Database db;
  const auto scale = tpcw::Scale::tiny();
  const auto pop = tpcw::populate_tpcw(db, scale);
  auto app = tpcw::make_tpcw_application(tpcw::TpcwState::from_population(
      scale, pop));

  ServerConfig config;
  config.db_connections = 6;
  config.header_threads = 2;
  config.static_threads = 2;
  config.general_threads = 4;
  config.lengthy_threads = 1;
  config.render_threads = 2;
  config.treserve_min = 1;
  config.charge_service_costs = false;
  config.cache.enabled = true;

  StagedServer server(config, app, db);
  const auto get = [&server](const std::string& url) {
    InProcClient client(server);
    return client.roundtrip("GET " + url + " HTTP/1.1\r\nHost: x\r\n\r\n");
  };

  get("/best_sellers?subject=ARTS&c_id=1");
  get("/best_sellers?subject=ARTS&c_id=1");
  EXPECT_EQ(server.stats().cache().snapshot().hits_total(), 1u);

  // The purchase writes order_line, staling the ranking.
  get("/buy_confirm?c_id=1");
  EXPECT_GE(server.stats().cache().snapshot().invalidations, 1u);

  const std::string after = get("/best_sellers?subject=ARTS&c_id=1");
  EXPECT_EQ(after.find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(server.stats().cache().snapshot().hits_total(), 1u);  // a miss
  server.shutdown();
  TimeScale::set(0.005);
}

}  // namespace
}  // namespace tempest::server
