// The adaptive treserve controller (Section 3.3, Tables 1 and 2).
#include "src/server/reserve_controller.h"

#include <gtest/gtest.h>

#include <latch>
#include <thread>
#include <vector>

namespace tempest::server {
namespace {

TEST(ReserveControllerTest, ReproducesPaperTableTwoExactly) {
  // Table 2: min treserve = 20; the tspare sequence and resulting treserve.
  ReserveController controller(20, /*max_reserve=*/1000);
  struct Row {
    std::int64_t tspare;
    std::int64_t treserve_before;
    std::int64_t delta;
  };
  const Row kTable2[] = {
      {35, 20, 0}, {24, 20, 0},  {17, 20, 6},  {21, 26, 5},  {30, 31, 1},
      {36, 32, -2}, {38, 30, -4}, {37, 26, -5}, {35, 21, -1}, {39, 20, 0},
  };
  for (const Row& row : kTable2) {
    ASSERT_EQ(controller.treserve(), row.treserve_before)
        << "before tick with tspare=" << row.tspare;
    const std::int64_t next = controller.tick(row.tspare);
    EXPECT_EQ(next, row.treserve_before + row.delta)
        << "after tick with tspare=" << row.tspare;
  }
}

TEST(ReserveControllerTest, TableOneDispatchRules) {
  ReserveController controller(20, 1000);
  // treserve == 20. Lengthy requests go to the lengthy pool iff
  // tspare <= treserve.
  EXPECT_FALSE(controller.send_lengthy_to_lengthy_pool(35));  // spare: general
  EXPECT_TRUE(controller.send_lengthy_to_lengthy_pool(20));   // equal: lengthy
  EXPECT_TRUE(controller.send_lengthy_to_lengthy_pool(5));    // short: lengthy
}

TEST(ReserveControllerTest, IncreaseIsDifferencePlusBelowMinAmount) {
  ReserveController controller(20, 1000);
  // tspare 17 < treserve 20: diff 3, below-min amount 3 -> +6 (Table 2 row 3).
  EXPECT_EQ(controller.tick(17), 26);
  // tspare 25 < treserve 26 but above min: diff only -> +1.
  EXPECT_EQ(controller.tick(25), 27);
}

TEST(ReserveControllerTest, DecreaseIsHalfTheDifference) {
  ReserveController controller(10, 1000);
  controller.tick(0);  // 10 -> 10+10+10 = 30
  EXPECT_EQ(controller.treserve(), 30);
  EXPECT_EQ(controller.tick(40), 25);  // -(40-30)/2
  EXPECT_EQ(controller.tick(40), 18);  // -(40-25)/2 = -7
}

TEST(ReserveControllerTest, DecayAlwaysAtLeastOne) {
  // Integer halving of a difference of 1 must still make progress, or the
  // reserve pins forever once it reaches tspare-1.
  ReserveController controller(4, 1000);
  controller.tick(0);  // 4 -> 12
  ASSERT_EQ(controller.treserve(), 12);
  EXPECT_EQ(controller.tick(13), 11);  // diff 1 -> still decays by 1
}

TEST(ReserveControllerTest, NeverDropsBelowMinimum) {
  ReserveController controller(20, 1000);
  for (int i = 0; i < 50; ++i) controller.tick(1000);
  EXPECT_EQ(controller.treserve(), 20);
}

TEST(ReserveControllerTest, CappedDuringSustainedSpike) {
  ReserveController controller(8, 30);
  for (int i = 0; i < 50; ++i) controller.tick(0);
  EXPECT_EQ(controller.treserve(), 30);  // no overflow, clamped
}

TEST(ReserveControllerTest, RecoversFromCapWhenSpareExceedsIt) {
  ReserveController controller(8, 30);
  for (int i = 0; i < 50; ++i) controller.tick(0);
  ASSERT_EQ(controller.treserve(), 30);
  // Pool fully idle: tspare (36) > cap (30) must decay, never deadlock.
  controller.tick(36);
  EXPECT_LT(controller.treserve(), 30);
  for (int i = 0; i < 50; ++i) controller.tick(36);
  EXPECT_EQ(controller.treserve(), 8);
}

TEST(ReserveControllerTest, EqualSpareIsSteadyState) {
  ReserveController controller(20, 1000);
  EXPECT_EQ(controller.tick(20), 20);
  EXPECT_EQ(controller.tick(20), 20);
}

TEST(ReserveControllerTest, MaxClampedToAtLeastMin) {
  ReserveController controller(50, 10);
  EXPECT_EQ(controller.max_reserve(), 50);
  EXPECT_EQ(controller.min_reserve(), 50);
}

TEST(ReserveControllerTest, SetClampsToTheReserveBand) {
  ReserveController controller(2, 10);
  EXPECT_EQ(controller.set(5), 5);
  EXPECT_EQ(controller.treserve(), 5);
  EXPECT_EQ(controller.set(0), 2);    // floored at the minimum
  EXPECT_EQ(controller.set(99), 10);  // capped at the maximum
}

TEST(ReserveControllerTest, ConcurrentTicksLoseNoUpdates) {
  // Regression: tick() used a relaxed load/store pair, so two concurrent
  // tickers could read the same starting reserve and the second would
  // blindly overwrite the first's update. With min_reserve 0 and tspare 0
  // every tick doubles the reserve, and doubling commutes — so T ticks from
  // 1 must land on exactly 2^T no matter how they interleave. A lost update
  // shows up as a smaller final value.
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  ReserveController controller(0, 1 << 20);
  for (int round = 0; round < kRounds; ++round) {
    controller.set(1);
    std::latch start(kThreads);
    std::vector<std::thread> tickers;
    for (int t = 0; t < kThreads; ++t) {
      tickers.emplace_back([&] {
        start.arrive_and_wait();
        controller.tick(0);
      });
    }
    for (auto& t : tickers) t.join();
    ASSERT_EQ(controller.treserve(), 1 << kThreads) << "round " << round;
  }
}

}  // namespace
}  // namespace tempest::server
