// Router, static store, service-time tracker, server stats.
#include <gtest/gtest.h>

#include "src/server/router.h"
#include "src/server/server_stats.h"
#include "src/server/service_time_tracker.h"
#include "src/server/static_store.h"

namespace tempest::server {
namespace {

HandlerResult dummy_handler(RequestContext&) {
  return StringResponse{"ok"};
}

TEST(RouterTest, ExactMatchLookup) {
  Router router;
  router.add("/home", dummy_handler);
  EXPECT_NE(router.find("/home"), nullptr);
  EXPECT_EQ(router.find("/home/"), nullptr);
  EXPECT_EQ(router.find("/nope"), nullptr);
  EXPECT_EQ(router.size(), 1u);
}

TEST(RouterTest, RejectsBadPathsAndDuplicates) {
  Router router;
  EXPECT_THROW(router.add("relative", dummy_handler), std::invalid_argument);
  EXPECT_THROW(router.add("", dummy_handler), std::invalid_argument);
  router.add("/a", dummy_handler);
  EXPECT_THROW(router.add("/a", dummy_handler), std::invalid_argument);
}

TEST(RouterTest, PathsListing) {
  Router router;
  router.add("/b", dummy_handler);
  router.add("/a", dummy_handler);
  const auto paths = router.paths();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "/a");  // sorted (map order)
}

TEST(StaticStoreTest, AddAndFind) {
  StaticStore store;
  store.add("/x.css", "body{}", "text/css");
  const auto* entry = store.find("/x.css");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->content, "body{}");
  EXPECT_EQ(entry->mime_type, "text/css");
  EXPECT_EQ(store.find("/nope.css"), nullptr);
}

TEST(StaticStoreTest, BlobsAreDeterministicAndSized) {
  StaticStore a;
  StaticStore b;
  a.add_blob("/img.gif", 500, "image/gif");
  b.add_blob("/img.gif", 500, "image/gif");
  EXPECT_EQ(a.find("/img.gif")->content.size(), 500u);
  EXPECT_EQ(a.find("/img.gif")->content, b.find("/img.gif")->content);
}

TEST(ServiceTimeTrackerTest, UnknownPagesDefaultToQuick) {
  ServiceTimeTracker tracker(2.0);
  EXPECT_FALSE(tracker.is_lengthy("/new"));
}

TEST(ServiceTimeTrackerTest, MeanCrossingCutoffFlipsClass) {
  ServiceTimeTracker tracker(2.0);
  tracker.record("/p", 1.0);
  EXPECT_FALSE(tracker.is_lengthy("/p"));
  tracker.record("/p", 5.0);  // mean 3.0
  EXPECT_TRUE(tracker.is_lengthy("/p"));
  EXPECT_DOUBLE_EQ(tracker.mean("/p"), 3.0);
}

TEST(ServiceTimeTrackerTest, PagesTrackedIndependently) {
  ServiceTimeTracker tracker(2.0);
  tracker.record("/slow", 10.0);
  tracker.record("/fast", 0.01);
  EXPECT_TRUE(tracker.is_lengthy("/slow"));
  EXPECT_FALSE(tracker.is_lengthy("/fast"));
  EXPECT_EQ(tracker.snapshot().size(), 2u);
}

TEST(ServiceTimeTrackerTest, ExactCutoffIsLengthy) {
  ServiceTimeTracker tracker(2.0);
  tracker.record("/edge", 2.0);
  EXPECT_TRUE(tracker.is_lengthy("/edge"));
}

TEST(ServerStatsTest, CompletionCountersByClass) {
  ServerStats stats(60.0);
  stats.record_completion(RequestClass::kStatic, "static", 10.0, 0.01);
  stats.record_completion(RequestClass::kStatic, "static", 20.0, 0.01);
  stats.record_completion(RequestClass::kQuickDynamic, "/home", 30.0, 0.5);
  stats.record_completion(RequestClass::kLengthyDynamic, "/best", 40.0, 9.0);
  EXPECT_EQ(stats.completed(RequestClass::kStatic), 2u);
  EXPECT_EQ(stats.completed(RequestClass::kQuickDynamic), 1u);
  EXPECT_EQ(stats.completed(RequestClass::kLengthyDynamic), 1u);
  EXPECT_EQ(stats.completed_total(), 4u);
}

TEST(ServerStatsTest, PerPageStatsAndCounts) {
  ServerStats stats(60.0);
  stats.record_completion(RequestClass::kQuickDynamic, "/home", 1.0, 0.4);
  stats.record_completion(RequestClass::kQuickDynamic, "/home", 2.0, 0.6);
  const auto page_stats = stats.page_response_stats();
  ASSERT_TRUE(page_stats.count("/home"));
  EXPECT_DOUBLE_EQ(page_stats.at("/home").mean(), 0.5);
  EXPECT_EQ(stats.page_counts().at("/home"), 2u);
  EXPECT_EQ(stats.page_series("/home").size(), 1u);
  EXPECT_TRUE(stats.page_series("/nope").empty());
}

TEST(ServerStatsTest, QueueSeriesNamedPerPool) {
  ServerStats stats;
  stats.sample_queue("general", 1.0, 5);
  stats.sample_queue("general", 2.0, 7);
  stats.sample_queue("lengthy", 1.0, 100);
  EXPECT_EQ(stats.queue_names().size(), 2u);
  ASSERT_EQ(stats.queue_series("general").size(), 2u);
  EXPECT_EQ(stats.queue_series("general")[1].value, 7.0);
  EXPECT_TRUE(stats.queue_series("nope").empty());
}

TEST(ServerStatsTest, ReserveSeries) {
  ServerStats stats;
  stats.sample_reserve(1.0, 35, 20);
  const auto tspare = stats.tspare_series();
  const auto treserve = stats.treserve_series();
  ASSERT_EQ(tspare.size(), 1u);
  EXPECT_EQ(tspare[0].value, 35.0);
  EXPECT_EQ(treserve[0].value, 20.0);
}

TEST(ServerStatsTest, ClassNames) {
  EXPECT_STREQ(to_string(RequestClass::kStatic), "static");
  EXPECT_STREQ(to_string(RequestClass::kQuickDynamic), "quick-dynamic");
  EXPECT_STREQ(to_string(RequestClass::kLengthyDynamic), "lengthy-dynamic");
}

}  // namespace
}  // namespace tempest::server
