// Router, static store, service-time tracker, server stats.
#include <gtest/gtest.h>

#include <chrono>

#include "src/common/clock.h"
#include "src/server/router.h"
#include "src/server/server_stats.h"
#include "src/server/service_time_tracker.h"
#include "src/server/static_store.h"

namespace tempest::server {
namespace {

HandlerResult dummy_handler(HandlerContext&) {
  return StringResponse{"ok"};
}

TEST(RouterTest, ExactMatchLookup) {
  Router router;
  router.add("/home", dummy_handler);
  EXPECT_NE(router.find("/home"), nullptr);
  EXPECT_EQ(router.find("/home/"), nullptr);
  EXPECT_EQ(router.find("/nope"), nullptr);
  EXPECT_EQ(router.size(), 1u);
}

TEST(RouterTest, RejectsBadPathsAndDuplicates) {
  Router router;
  EXPECT_THROW(router.add("relative", dummy_handler), std::invalid_argument);
  EXPECT_THROW(router.add("", dummy_handler), std::invalid_argument);
  router.add("/a", dummy_handler);
  EXPECT_THROW(router.add("/a", dummy_handler), std::invalid_argument);
}

TEST(RouterTest, PathsListing) {
  Router router;
  router.add("/b", dummy_handler);
  router.add("/a", dummy_handler);
  const auto paths = router.paths();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "/a");  // sorted (map order)
}

TEST(StaticStoreTest, AddAndFind) {
  StaticStore store;
  store.add("/x.css", "body{}", "text/css");
  const auto* entry = store.find("/x.css");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(*entry->content, "body{}");
  EXPECT_EQ(entry->mime_type, "text/css");
  EXPECT_EQ(store.find("/nope.css"), nullptr);
}

TEST(StaticStoreTest, BlobsAreDeterministicAndSized) {
  StaticStore a;
  StaticStore b;
  a.add_blob("/img.gif", 500, "image/gif");
  b.add_blob("/img.gif", 500, "image/gif");
  EXPECT_EQ(a.find("/img.gif")->content->size(), 500u);
  EXPECT_EQ(*a.find("/img.gif")->content, *b.find("/img.gif")->content);
}

TEST(ServiceTimeTrackerTest, UnknownPagesDefaultToQuick) {
  ServiceTimeTracker tracker(2.0);
  EXPECT_FALSE(tracker.is_lengthy("/new"));
}

TEST(ServiceTimeTrackerTest, MeanCrossingCutoffFlipsClass) {
  ServiceTimeTracker tracker(2.0);
  tracker.record("/p", 1.0);
  EXPECT_FALSE(tracker.is_lengthy("/p"));
  tracker.record("/p", 5.0);  // mean 3.0
  EXPECT_TRUE(tracker.is_lengthy("/p"));
  EXPECT_DOUBLE_EQ(tracker.mean("/p"), 3.0);
}

TEST(ServiceTimeTrackerTest, PagesTrackedIndependently) {
  ServiceTimeTracker tracker(2.0);
  tracker.record("/slow", 10.0);
  tracker.record("/fast", 0.01);
  EXPECT_TRUE(tracker.is_lengthy("/slow"));
  EXPECT_FALSE(tracker.is_lengthy("/fast"));
  EXPECT_EQ(tracker.snapshot().size(), 2u);
}

TEST(ServiceTimeTrackerTest, ExactCutoffIsLengthy) {
  ServiceTimeTracker tracker(2.0);
  tracker.record("/edge", 2.0);
  EXPECT_TRUE(tracker.is_lengthy("/edge"));
}

TEST(ServerStatsTest, CompletionCountersByClass) {
  ServerStats stats(60.0);
  stats.record_completion(RequestClass::kStatic, "static", 10.0, 0.01);
  stats.record_completion(RequestClass::kStatic, "static", 20.0, 0.01);
  stats.record_completion(RequestClass::kQuickDynamic, "/home", 30.0, 0.5);
  stats.record_completion(RequestClass::kLengthyDynamic, "/best", 40.0, 9.0);
  EXPECT_EQ(stats.completed(RequestClass::kStatic), 2u);
  EXPECT_EQ(stats.completed(RequestClass::kQuickDynamic), 1u);
  EXPECT_EQ(stats.completed(RequestClass::kLengthyDynamic), 1u);
  EXPECT_EQ(stats.completed_total(), 4u);
}

TEST(ServerStatsTest, PerPageStatsAndCounts) {
  ServerStats stats(60.0);
  stats.record_completion(RequestClass::kQuickDynamic, "/home", 1.0, 0.4);
  stats.record_completion(RequestClass::kQuickDynamic, "/home", 2.0, 0.6);
  const auto page_stats = stats.page_response_stats();
  ASSERT_TRUE(page_stats.count("/home"));
  EXPECT_DOUBLE_EQ(page_stats.at("/home").mean(), 0.5);
  EXPECT_EQ(stats.page_counts().at("/home"), 2u);
  EXPECT_EQ(stats.page_series("/home").size(), 1u);
  EXPECT_TRUE(stats.page_series("/nope").empty());
}

TEST(ServerStatsTest, QueueSeriesNamedPerPool) {
  ServerStats stats;
  stats.sample_queue("general", 1.0, 5);
  stats.sample_queue("general", 2.0, 7);
  stats.sample_queue("lengthy", 1.0, 100);
  EXPECT_EQ(stats.queue_names().size(), 2u);
  ASSERT_EQ(stats.queue_series("general").size(), 2u);
  EXPECT_EQ(stats.queue_series("general")[1].value, 7.0);
  EXPECT_TRUE(stats.queue_series("nope").empty());
}

TEST(ServerStatsTest, ReserveSeries) {
  ServerStats stats;
  stats.sample_reserve(1.0, 35, 20);
  const auto tspare = stats.tspare_series();
  const auto treserve = stats.treserve_series();
  ASSERT_EQ(tspare.size(), 1u);
  EXPECT_EQ(tspare[0].value, 35.0);
  EXPECT_EQ(treserve[0].value, 20.0);
}

TEST(ServerStatsTest, ClassNames) {
  EXPECT_STREQ(to_string(RequestClass::kStatic), "static");
  EXPECT_STREQ(to_string(RequestClass::kQuickDynamic), "quick-dynamic");
  EXPECT_STREQ(to_string(RequestClass::kLengthyDynamic), "lengthy-dynamic");
}

TEST(ServerStatsTest, StageNames) {
  EXPECT_STREQ(to_string(Stage::kHeader), "header");
  EXPECT_STREQ(to_string(Stage::kGeneral), "general");
  EXPECT_STREQ(to_string(Stage::kRender), "render");
  EXPECT_STREQ(to_string(Stage::kWorker), "worker");
}

// Pins TimeScale to 1.0 (paper seconds == wall seconds) so synthetic stage
// traces built from explicit time_points produce exact paper-second numbers.
class StageTraceTest : public ::testing::Test {
 protected:
  void SetUp() override { TimeScale::set(1.0); }
  void TearDown() override { TimeScale::set(0.005); }

  static WallClock::time_point at(double seconds) {
    return WallClock::time_point{} + std::chrono::duration_cast<
        WallClock::duration>(std::chrono::duration<double>(seconds));
  }
};

TEST_F(StageTraceTest, StampsSeparateQueueWaitAndServiceTimePerVisit) {
  StageTrace trace;
  trace.enqueue(Stage::kHeader, at(1.0));
  trace.dequeue(at(1.5));
  trace.complete(at(2.0));   // header: wait 0.5, service 0.5
  trace.enqueue(Stage::kGeneral, at(2.0));
  trace.dequeue(at(4.0));
  trace.complete(at(7.0));   // general: wait 2.0, service 3.0

  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].stage, Stage::kHeader);
  EXPECT_DOUBLE_EQ(trace[0].queue_wait_paper_s(), 0.5);
  EXPECT_DOUBLE_EQ(trace[0].service_paper_s(), 0.5);
  EXPECT_EQ(trace[1].stage, Stage::kGeneral);
  EXPECT_DOUBLE_EQ(trace[1].queue_wait_paper_s(), 2.0);
  EXPECT_DOUBLE_EQ(trace[1].service_paper_s(), 3.0);
}

TEST_F(StageTraceTest, CompleteIsFirstStampWins) {
  StageTrace trace;
  trace.enqueue(Stage::kGeneral, at(0.0));
  trace.dequeue(at(1.0));
  trace.complete(at(2.0));
  trace.complete(at(99.0));  // a later stamp must not rewrite history
  EXPECT_DOUBLE_EQ(trace[0].service_paper_s(), 1.0);
}

TEST_F(StageTraceTest, VisitNeverDequeuedReportsZeroAndIsSkippedByMetrics) {
  StageTrace trace;
  trace.enqueue(Stage::kGeneral, at(1.0));  // shed while still queued
  EXPECT_FALSE(trace[0].dequeued_set());
  EXPECT_DOUBLE_EQ(trace[0].queue_wait_paper_s(), 0.0);

  StageMetrics metrics;
  metrics.record(trace, RequestClass::kQuickDynamic);
  EXPECT_TRUE(metrics.breakdown().empty());
}

TEST_F(StageTraceTest, StageMetricsAggregatesPerStageAndClass) {
  StageMetrics metrics;
  for (int i = 1; i <= 4; ++i) {
    StageTrace trace;
    trace.enqueue(Stage::kHeader, at(0.0));
    trace.dequeue(at(0.1 * i));               // waits 0.1..0.4
    trace.complete(at(0.1 * i + 0.2));        // service always 0.2
    trace.enqueue(Stage::kGeneral, at(1.0));
    trace.dequeue(at(1.0 + i));               // waits 1..4
    trace.complete(at(1.0 + i + 2.0 * i));    // service 2..8
    metrics.record(trace, RequestClass::kQuickDynamic);
  }
  // One lengthy request through the general pool lands in a separate cell.
  StageTrace lengthy;
  lengthy.enqueue(Stage::kGeneral, at(0.0));
  lengthy.dequeue(at(0.5));
  lengthy.complete(at(10.5));
  metrics.record(lengthy, RequestClass::kLengthyDynamic);

  const auto wait = metrics.queue_wait(Stage::kGeneral,
                                       RequestClass::kQuickDynamic);
  EXPECT_EQ(wait.count, 4u);
  EXPECT_DOUBLE_EQ(wait.mean, 2.5);
  EXPECT_DOUBLE_EQ(wait.max, 4.0);
  const auto service = metrics.service(Stage::kGeneral,
                                       RequestClass::kQuickDynamic);
  EXPECT_DOUBLE_EQ(service.mean, 5.0);
  EXPECT_DOUBLE_EQ(service.max, 8.0);
  // Percentiles are clamped to the observed maximum.
  EXPECT_LE(service.p99, service.max);

  const auto lengthy_service =
      metrics.service(Stage::kGeneral, RequestClass::kLengthyDynamic);
  EXPECT_EQ(lengthy_service.count, 1u);
  EXPECT_DOUBLE_EQ(lengthy_service.max, 10.0);

  // breakdown(): only populated cells, ordered by stage then class.
  const auto rows = metrics.breakdown();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].stage, Stage::kHeader);
  EXPECT_EQ(rows[0].cls, RequestClass::kQuickDynamic);
  EXPECT_EQ(rows[1].stage, Stage::kGeneral);
  EXPECT_EQ(rows[1].cls, RequestClass::kQuickDynamic);
  EXPECT_EQ(rows[2].stage, Stage::kGeneral);
  EXPECT_EQ(rows[2].cls, RequestClass::kLengthyDynamic);
  EXPECT_EQ(rows[0].queue_wait.count, 4u);
}

TEST(ServerStatsTest, ShedCountersPerClass) {
  ServerStats stats;
  EXPECT_EQ(stats.shed_total(), 0u);
  stats.record_shed(RequestClass::kQuickDynamic);
  stats.record_shed(RequestClass::kQuickDynamic);
  stats.record_shed(RequestClass::kStatic);
  EXPECT_EQ(stats.shed(RequestClass::kQuickDynamic), 2u);
  EXPECT_EQ(stats.shed(RequestClass::kStatic), 1u);
  EXPECT_EQ(stats.shed(RequestClass::kLengthyDynamic), 0u);
  EXPECT_EQ(stats.shed_total(), 3u);
  // Sheds are not completions.
  EXPECT_EQ(stats.completed_total(), 0u);
}

}  // namespace
}  // namespace tempest::server
