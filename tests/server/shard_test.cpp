// The sharded reactor (reactor_shards > 1): connection placement, shard
// affinity of keep-alive connections, per-shard timer wheels, partial-write
// resume across shards, graceful stop with in-flight connections on every
// shard, global connection caps, per-shard chaos determinism, and the
// per-shard counter breakdown. Most tests run in accept-and-hand-off mode
// (reuse_port = false) because its round-robin placement is deterministic;
// SO_REUSEPORT mode gets its own smoke tests (the kernel's shard choice on
// loopback is not predictable, so those only assert roll-up behaviour).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/fault.h"
#include "src/server/staged_server.h"
#include "src/server/tcp.h"
#include "src/tpcw/handlers.h"
#include "src/tpcw/populate.h"

namespace tempest::server {
namespace {

std::string get(const std::string& path) {
  return "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n";
}

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.0001);
    pop_ = tpcw::populate_tpcw(db_, tpcw::Scale::tiny());
    app_ = tpcw::make_tpcw_application(
        tpcw::TpcwState::from_population(tpcw::Scale::tiny(), pop_));
    config_.db_connections = 8;
    config_.baseline_threads = 8;
    config_.header_threads = 2;
    config_.static_threads = 2;
    config_.general_threads = 6;
    config_.lengthy_threads = 2;
    config_.render_threads = 2;
  }

  void TearDown() override { TimeScale::set(0.005); }

  // Deterministic-placement transport: 4 shards, hand-off mode.
  static TransportConfig handoff(std::size_t shards = 4) {
    TransportConfig transport;
    transport.reactor_shards = shards;
    transport.reuse_port = false;
    return transport;
  }

  db::Database db_;
  tpcw::PopulationSummary pop_;
  std::shared_ptr<const Application> app_;
  ServerConfig config_;
};

// --- placement and affinity -------------------------------------------------

// Hand-off mode round-robins accepted connections across shards (self
// included), so 8 sequential connections land 2 on each of 4 shards — and
// the per-shard breakdown shows exactly that.
TEST_F(ShardTest, HandoffRoundRobinsConnectionsAcrossShards) {
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, handoff(), &server.stats());
  ASSERT_EQ(listener.shard_count(), 4u);
  EXPECT_FALSE(listener.reuse_port_active());

  std::vector<std::unique_ptr<TcpClient>> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(std::make_unique<TcpClient>(listener.port()));
    // Serve one request before the next connect so placement is sequential.
    EXPECT_EQ(clients.back()->request(get("/img/logo.gif"))
                  .find("HTTP/1.1 200"),
              0u);
  }

  const auto shards = listener.counters().per_shard();
  ASSERT_EQ(shards.size(), 4u);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].accepted, 2u) << "shard " << i;
    EXPECT_EQ(shards[i].requests, 2u) << "shard " << i;
  }
  const auto total = listener.counters().snapshot();
  EXPECT_EQ(total.accepted, 8u);
  EXPECT_EQ(total.requests, 8u);

  listener.stop();
  server.shutdown();
}

// A keep-alive connection stays on the shard that adopted it: every request
// it ever sends is counted by exactly one shard.
TEST_F(ShardTest, KeepAliveConnectionStaysOnItsShard) {
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, handoff(), &server.stats());

  TcpClient client(listener.port());
  for (int i = 0; i < 10; ++i) {
    const std::string url =
        i % 2 ? "/home?c_id=" + std::to_string(i + 1) : "/img/logo.gif";
    EXPECT_EQ(client.request(get(url)).find("HTTP/1.1 200"), 0u)
        << "request " << i;
  }

  const auto shards = listener.counters().per_shard();
  std::size_t owners = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].requests == 0) continue;
    ++owners;
    EXPECT_EQ(shards[i].accepted, 1u) << "shard " << i;
    EXPECT_EQ(shards[i].requests, 10u) << "shard " << i;
    EXPECT_EQ(shards[i].keepalive_reuse, 9u) << "shard " << i;
  }
  EXPECT_EQ(owners, 1u);

  listener.stop();
  server.shutdown();
}

// --- per-shard timer wheels -------------------------------------------------

// Each shard runs its own wheel: park one idle connection on every shard and
// all four must be expired by their owners.
TEST_F(ShardTest, EveryShardTimesOutItsOwnIdleConnections) {
  TransportConfig transport = handoff();
  transport.idle_timeout_ms = 100;
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, transport, &server.stats());

  std::vector<std::unique_ptr<TcpClient>> clients;
  for (int i = 0; i < 4; ++i) {
    clients.push_back(std::make_unique<TcpClient>(listener.port()));
    // One served request pins the adoption before the next connect (and
    // makes the later close an *idle* timeout, between requests).
    EXPECT_EQ(clients.back()->request(get("/img/logo.gif"))
                  .find("HTTP/1.1 200"),
              0u);
  }
  for (auto& client : clients) {
    EXPECT_TRUE(client->server_closed(3000));
  }

  const auto shards = listener.counters().per_shard();
  ASSERT_EQ(shards.size(), 4u);
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(shards[i].idle_timeouts, 1u) << "shard " << i;
    EXPECT_EQ(shards[i].open(), 0u) << "shard " << i;
  }
  EXPECT_EQ(listener.open_connections(), 0u);

  listener.stop();
  server.shutdown();
}

// --- partial writes under sharding ------------------------------------------

// The partial-write resume machinery (out_off, EPOLLOUT re-arming, iovec
// seams) lives per shard; concurrent huge transfers on different shards must
// each come through byte-exact.
TEST_F(ShardTest, PartialWritesResumeIndependentlyPerShard) {
  auto app = std::make_shared<Application>();
  app->static_store.add_blob("/huge.bin", 3 << 18,  // 768 KiB
                            "application/octet-stream");
  auto app_const = std::static_pointer_cast<const Application>(app);
  StagedServer server(config_, app_const, db_);
  TcpListener listener(server, 0, handoff(2), &server.stats());

  const StaticStore::Entry* entry = app->static_store.find("/huge.bin");
  ASSERT_NE(entry, nullptr);

  // Two tiny-window clients, one per shard, draining concurrently.
  TcpClient a(listener.port(), /*io_timeout_ms=*/10000, /*rcvbuf_bytes=*/4096);
  TcpClient b(listener.port(), /*io_timeout_ms=*/10000, /*rcvbuf_bytes=*/4096);
  a.send_raw(get("/huge.bin"));
  b.send_raw(get("/huge.bin"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::string response_b;
  std::thread drain_b([&] { response_b = b.read_response(); });
  const std::string response_a = a.read_response();
  drain_b.join();

  const std::string* responses[] = {&response_a, &response_b};
  for (const std::string* response : responses) {
    EXPECT_EQ(response->find("HTTP/1.1 200"), 0u);
    const std::size_t header_end = response->find("\r\n\r\n");
    ASSERT_NE(header_end, std::string::npos);
    const std::string_view body =
        std::string_view(*response).substr(header_end + 4);
    ASSERT_EQ(body.size(), entry->content->size());
    EXPECT_TRUE(body == *entry->content);
  }

  const auto shards = listener.counters().per_shard();
  EXPECT_EQ(shards[0].accepted, 1u);
  EXPECT_EQ(shards[1].accepted, 1u);

  listener.stop();
  server.shutdown();
}

// --- shutdown ---------------------------------------------------------------

// stop() with live (and mid-request) connections parked on every shard must
// join all shard threads promptly and leave no connection open.
TEST_F(ShardTest, StopWithInFlightConnectionsOnEveryShard) {
  StagedServer server(config_, app_, db_);
  auto listener = std::make_unique<TcpListener>(server, 0, handoff(),
                                                &server.stats());

  std::vector<std::unique_ptr<TcpClient>> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(std::make_unique<TcpClient>(listener->port()));
    EXPECT_EQ(clients.back()->request(get("/img/logo.gif"))
                  .find("HTTP/1.1 200"),
              0u);
  }
  // Half the clients leave a request in flight when the listener stops.
  for (std::size_t i = 0; i < clients.size(); i += 2) {
    clients[i]->send_raw(get("/home?c_id=" + std::to_string(i + 1)));
  }

  const auto t0 = std::chrono::steady_clock::now();
  listener->stop();
  listener.reset();  // must not hang
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
  server.shutdown();  // pool threads' late completions are dropped safely
  SUCCEED();
}

// --- global connection cap --------------------------------------------------

// max_connections is listener-wide, not per shard: with 4 shards and a cap
// of 2, the third connection is refused even though two shards are empty.
TEST_F(ShardTest, MaxConnectionsIsGlobalAcrossShards) {
  TransportConfig transport = handoff();
  transport.max_connections = 2;
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, transport, &server.stats());

  TcpClient first(listener.port());
  TcpClient second(listener.port());
  EXPECT_EQ(first.request(get("/img/logo.gif")).find("HTTP/1.1 200"), 0u);
  EXPECT_EQ(second.request(get("/img/logo.gif")).find("HTTP/1.1 200"), 0u);

  TcpClient third(listener.port());
  EXPECT_TRUE(third.server_closed(3000));
  EXPECT_GE(listener.counters().snapshot().refused_max_connections, 1u);

  listener.stop();
  server.shutdown();
}

// --- chaos determinism per shard --------------------------------------------

// Same seed, same sequential request sequence, hand-off placement => the
// fault ledger is identical run to run even with 4 shards: each shard
// derives its own plan (seed offset by shard index) and sees a
// deterministic subsequence of connections.
TEST_F(ShardTest, ChaosResetLedgerIsDeterministicAcrossShardedRuns) {
  const auto run_once = [&]() -> std::uint64_t {
    auto plan = std::make_shared<FaultPlan>(/*seed=*/7);
    FaultRule rule;
    rule.enabled = true;
    rule.probability = 0.5;
    plan->set(FaultSite::kSocketReset, rule);

    ServerConfig config = config_;
    config.transport = handoff();
    config.transport.fault_plan = plan;
    StagedServer server(config, app_, db_);
    TcpListener listener(server, 0, config.transport, &server.stats());

    int served = 0;
    for (int i = 0; i < 24; ++i) {
      // One request per connection; a reset surfaces as an empty response.
      const std::string response =
          tcp_roundtrip(listener.port(), get("/img/logo.gif"));
      if (response.find("HTTP/1.1 200") == 0) ++served;
    }
    const std::uint64_t injected =
        server.stats().faults().snapshot().injected_at(FaultSite::kSocketReset);
    EXPECT_EQ(served + static_cast<int>(injected), 24);
    EXPECT_GT(injected, 0u);

    listener.stop();
    server.shutdown();
    return injected;
  };

  const std::uint64_t first = run_once();
  const std::uint64_t second = run_once();
  EXPECT_EQ(first, second);
}

// Short writes injected per shard still deliver byte-identical responses —
// the chaos clamp only changes syscall granularity, never bytes.
TEST_F(ShardTest, ChaosShortWritesDeliverExactBytesOnEveryShard) {
  auto plan = std::make_shared<FaultPlan>(/*seed=*/11);
  FaultRule rule;
  rule.enabled = true;
  rule.probability = 1.0;  // every sendmsg clamped to one byte
  plan->set(FaultSite::kShortWrite, rule);

  TransportConfig transport = handoff();
  transport.fault_plan = plan;
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, transport, &server.stats());

  // Reference bytes from an uninjected listener on the same server.
  TcpListener clean(server, 0, handoff(), &server.stats());
  std::string expected = tcp_roundtrip(clean.port(), get("/img/logo.gif"));
  ASSERT_EQ(expected.find("HTTP/1.1 200"), 0u);

  for (int i = 0; i < 4; ++i) {  // one connection per shard
    std::string got = tcp_roundtrip(listener.port(), get("/img/logo.gif"));
    // Date headers may differ between the two responses; blank them out.
    const auto blank_date = [](std::string& s) {
      const auto pos = s.find("Date: ");
      if (pos == std::string::npos) return;
      const auto end = s.find("\r\n", pos);
      s.replace(pos, end - pos, "Date: X");
    };
    blank_date(got);
    std::string want = expected;
    blank_date(want);
    EXPECT_EQ(got, want) << "connection " << i;
  }
  EXPECT_GT(
      server.stats().faults().snapshot().injected_at(FaultSite::kShortWrite),
      0u);

  clean.stop();
  listener.stop();
  server.shutdown();
}

// --- SO_REUSEPORT mode ------------------------------------------------------

// The kernel-spread mode serves correctly with every shard listening on its
// own socket. Placement is the kernel's choice, so only roll-ups and the
// mode flag are asserted.
TEST_F(ShardTest, ReuseportModeServesAcrossConnections) {
  TransportConfig transport;
  transport.reactor_shards = 4;  // reuse_port stays default-on
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, transport, &server.stats());
  ASSERT_EQ(listener.shard_count(), 4u);
  EXPECT_TRUE(listener.reuse_port_active());

  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] {
      TcpClient client(listener.port());
      for (int j = 0; j < 4; ++j) {
        const std::string url =
            (i + j) % 2 ? "/home?c_id=" + std::to_string(i + 1)
                        : "/img/logo.gif";
        if (client.request(get(url)).find("HTTP/1.1 200") == 0) ++ok;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 32);
  const auto total = listener.counters().snapshot();
  EXPECT_EQ(total.accepted, 8u);
  EXPECT_EQ(total.requests, 32u);

  listener.stop();
  server.shutdown();
}

// reactor_shards = 0 sizes to the hardware (>= 1) and still serves.
TEST_F(ShardTest, AutoShardCountServes) {
  TransportConfig transport;
  transport.reactor_shards = 0;
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, transport, &server.stats());
  EXPECT_GE(listener.shard_count(), 1u);
  EXPECT_LE(listener.shard_count(), 16u);
  EXPECT_EQ(tcp_roundtrip(listener.port(), get("/img/logo.gif"))
                .find("HTTP/1.1 200"),
            0u);
  listener.stop();
  server.shutdown();
}

// --- stats surfaces ---------------------------------------------------------

// The text and JSON dumps carry the roll-up plus one entry per shard.
TEST_F(ShardTest, TransportStatsDumpShowsPerShardBreakdown) {
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0, handoff(), &server.stats());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(tcp_roundtrip(listener.port(), get("/img/logo.gif"))
                  .find("HTTP/1.1 200"),
              0u);
  }

  const std::string text = server.stats().transport().text();
  EXPECT_NE(text.find("transport: accepted=4"), std::string::npos) << text;
  EXPECT_NE(text.find("shard 0: accepted=1"), std::string::npos) << text;
  EXPECT_NE(text.find("shard 3: accepted=1"), std::string::npos) << text;

  const std::string json = server.stats().transport().json();
  EXPECT_NE(json.find("\"rollup\":{\"accepted\":4"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"shards\":["), std::string::npos) << json;

  listener.stop();
  server.shutdown();
}

// --- TcpClient hardening ----------------------------------------------------

// Connecting to a dead port fails promptly with a connect() error, not an
// I/O timeout much later.
TEST_F(ShardTest, ClientConnectToDeadPortFailsFast) {
  // Bind-then-close to get a port that is almost certainly unused.
  std::uint16_t dead_port = 0;
  {
    StagedServer server(config_, app_, db_);
    TcpListener listener(server, 0, TransportConfig{}, &server.stats());
    dead_port = listener.port();
    listener.stop();
    server.shutdown();
  }
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(
      { TcpClient client(dead_port, /*io_timeout_ms=*/200); },
      std::runtime_error);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
      5000);
}

}  // namespace
}  // namespace tempest::server
