// Integration over real loopback sockets.
#include <gtest/gtest.h>

#include <thread>

#include "src/common/clock.h"
#include "src/server/staged_server.h"
#include "src/server/tcp.h"
#include "src/tpcw/handlers.h"
#include "src/tpcw/populate.h"

namespace tempest::server {
namespace {

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.0001);
    pop_ = tpcw::populate_tpcw(db_, tpcw::Scale::tiny());
    app_ = tpcw::make_tpcw_application(
        tpcw::TpcwState::from_population(tpcw::Scale::tiny(), pop_));
    config_.db_connections = 8;
    config_.baseline_threads = 8;
    config_.header_threads = 2;
    config_.static_threads = 2;
    config_.general_threads = 6;
    config_.lengthy_threads = 2;
    config_.render_threads = 2;
  }

  void TearDown() override { TimeScale::set(0.005); }

  db::Database db_;
  tpcw::PopulationSummary pop_;
  std::shared_ptr<const Application> app_;
  ServerConfig config_;
};

TEST_F(TcpTest, ServesDynamicPageOverRealSocket) {
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0);
  ASSERT_GT(listener.port(), 0);
  const std::string response = tcp_roundtrip(
      listener.port(), "GET /home?c_id=3 HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(response.find("HTTP/1.1 200"), 0u);
  EXPECT_NE(response.find("Welcome back"), std::string::npos);
  listener.stop();
  server.shutdown();
}

TEST_F(TcpTest, ServesStaticImageOverRealSocket) {
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0);
  const std::string response = tcp_roundtrip(
      listener.port(), "GET /img/banner.gif HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(response.find("HTTP/1.1 200"), 0u);
  EXPECT_NE(response.find("Content-Length: 5000"), std::string::npos);
  listener.stop();
  server.shutdown();
}

TEST_F(TcpTest, ConcurrentSocketClients) {
  StagedServer server(config_, app_, db_);
  TcpListener listener(server, 0);
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 16; ++i) {
    clients.emplace_back([&, i] {
      const std::string url =
          i % 2 ? "/product_detail?i_id=" + std::to_string(i + 1)
                : "/img/logo.gif";
      const std::string response = tcp_roundtrip(
          listener.port(), "GET " + url + " HTTP/1.1\r\nHost: x\r\n\r\n");
      if (response.find("HTTP/1.1 200") == 0) ++ok;
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 16);
  listener.stop();
  server.shutdown();
}

TEST_F(TcpTest, StopUnblocksAcceptLoop) {
  StagedServer server(config_, app_, db_);
  auto listener = std::make_unique<TcpListener>(server, 0);
  listener->stop();
  listener.reset();  // must not hang
  server.shutdown();
  SUCCEED();
}

}  // namespace
}  // namespace tempest::server
