// Controller 2.0 (DESIGN.md §15): the greedy marginal-utility planner as a
// pure function, and the live allocator wired into a staged server.
#include "src/server/pool_controller.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/server/staged_server.h"
#include "src/server/transport.h"

namespace tempest::server {
namespace {

PoolSignal signal(const std::string& name, std::size_t threads, double demand,
                  double service, bool holds_db = true,
                  std::size_t min_threads = 1) {
  PoolSignal s;
  s.name = name;
  s.threads = threads;
  s.min_threads = min_threads;
  s.demand = demand;
  s.service_paper_s = service;
  s.holds_db_connection = holds_db;
  return s;
}

PlanConstraints constraints(std::size_t thread_budget, std::size_t db_budget,
                            std::size_t step = 2, double hysteresis = 0.25) {
  PlanConstraints c;
  c.thread_budget = thread_budget;
  c.db_connection_budget = db_budget;
  c.max_step_per_tick = step;
  c.hysteresis = hysteresis;
  return c;
}

std::size_t sum(const std::vector<std::size_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::size_t{0});
}

TEST(PlanRebalanceTest, EmptyInputYieldsEmptyPlan) {
  EXPECT_TRUE(plan_rebalance({}, constraints(8, 8)).empty());
}

TEST(PlanRebalanceTest, MovesThreadsFromIdleToLoadedPool) {
  // Pool 0 is nearly idle; pool 1 has four times its thread count queued.
  const std::vector<PoolSignal> pools = {signal("idle", 6, 0.5, 1.0),
                                         signal("hot", 2, 8.0, 1.0)};
  const auto plan = plan_rebalance(pools, constraints(8, 16));
  // The per-tick step cap (2) bounds the exchange, so one tick converges
  // partway: 6/2 -> 4/4.
  EXPECT_EQ(plan[0], 4u);
  EXPECT_EQ(plan[1], 4u);
  EXPECT_EQ(sum(plan), 8u);  // pure exchange: the total is conserved
}

TEST(PlanRebalanceTest, HysteresisBlocksNearEqualPressures) {
  // Gain of growing pool 1 (4.2/20 = 0.21) does not clearly beat the loss of
  // shrinking pool 0 (4/12 = 0.33): no thread may move, in either direction.
  const std::vector<PoolSignal> pools = {signal("a", 4, 4.0, 1.0),
                                         signal("b", 4, 4.2, 1.0)};
  const auto plan = plan_rebalance(pools, constraints(8, 16));
  EXPECT_EQ(plan[0], 4u);
  EXPECT_EQ(plan[1], 4u);
}

TEST(PlanRebalanceTest, RespectsPerPoolFloors) {
  // Pool 0 sits at its floor: its marginal loss is infinite, so even a
  // starving pool 1 cannot draw it below min_threads.
  const std::vector<PoolSignal> pools = {
      signal("floored", 2, 0.0, 1.0, true, /*min_threads=*/2),
      signal("hot", 4, 20.0, 1.0)};
  const auto plan = plan_rebalance(pools, constraints(6, 16));
  EXPECT_EQ(plan[0], 2u);
  EXPECT_EQ(plan[1], 4u);
}

TEST(PlanRebalanceTest, AllocatesBudgetSlackToPressuredPool) {
  // One pool, demand 6 on 2 threads, budget 6: slack is free (loss 0), so
  // the pool grows — but only by the per-tick step cap.
  const std::vector<PoolSignal> pools = {signal("hot", 2, 6.0, 1.0)};
  const auto plan = plan_rebalance(pools, constraints(6, 16));
  EXPECT_EQ(plan[0], 4u);
}

TEST(PlanRebalanceTest, NeverExceedsThreadBudget) {
  const std::vector<PoolSignal> pools = {signal("a", 2, 10.0, 1.0),
                                         signal("b", 2, 10.0, 1.0)};
  const auto plan = plan_rebalance(pools, constraints(5, 16));
  EXPECT_LE(sum(plan), 5u);
}

TEST(PlanRebalanceTest, ZeroDemandPoolsDoNotChurn) {
  // Slack exists, but nobody clears the minimum-gain bar: idle pools must
  // not trade threads over numerical noise.
  const std::vector<PoolSignal> pools = {signal("a", 3, 0.0, 0.0),
                                         signal("b", 3, 0.0, 0.0)};
  const auto plan = plan_rebalance(pools, constraints(12, 16));
  EXPECT_EQ(plan[0], 3u);
  EXPECT_EQ(plan[1], 3u);
}

TEST(PlanRebalanceTest, DbBudgetBlocksGrowthFromNonDbDonor) {
  // The DB-holding receiver wants threads, the non-DB donor has plenty to
  // give — but every connection is spoken for, so no exchange is legal.
  const std::vector<PoolSignal> pools = {
      signal("render", 6, 0.1, 1.0, /*holds_db=*/false),
      signal("general", 2, 10.0, 1.0, /*holds_db=*/true)};
  const auto blocked = plan_rebalance(pools, constraints(8, /*db=*/2));
  EXPECT_EQ(blocked[0], 6u);
  EXPECT_EQ(blocked[1], 2u);

  // With connection headroom the same exchange goes through.
  const auto allowed = plan_rebalance(pools, constraints(8, /*db=*/4));
  EXPECT_EQ(allowed[0], 4u);
  EXPECT_EQ(allowed[1], 4u);
}

TEST(PlanRebalanceTest, DbToDbExchangeIsNeutralUnderTightDbBudget) {
  // Both pools hold connections: moving a thread also moves its connection,
  // so a fully-committed DB budget does not block the exchange.
  const std::vector<PoolSignal> pools = {
      signal("general", 6, 0.1, 1.0, /*holds_db=*/true),
      signal("lengthy", 2, 10.0, 1.0, /*holds_db=*/true)};
  const auto plan = plan_rebalance(pools, constraints(8, /*db=*/8));
  EXPECT_EQ(plan[0], 4u);
  EXPECT_EQ(plan[1], 4u);
}

TEST(PlanRebalanceTest, TiesBreakTowardLowestIndexDeterministically) {
  // Identical pressures competing for one slack thread: the plan must be a
  // pure function of its inputs, and the first pool wins the tie.
  const std::vector<PoolSignal> pools = {signal("a", 1, 5.0, 1.0),
                                         signal("b", 1, 5.0, 1.0)};
  const auto first = plan_rebalance(pools, constraints(3, 16, /*step=*/1));
  ASSERT_EQ(first[0], 2u);
  EXPECT_EQ(first[1], 1u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(plan_rebalance(pools, constraints(3, 16, 1)), first);
  }
}

TEST(PlanRebalanceTest, StepCapBoundsEveryPoolPerTick) {
  const std::vector<PoolSignal> pools = {signal("cold", 10, 0.1, 1.0),
                                         signal("hot", 2, 50.0, 1.0)};
  const auto plan = plan_rebalance(pools, constraints(12, 16, /*step=*/3));
  EXPECT_EQ(plan[0], 7u);  // shrank by exactly the cap
  EXPECT_EQ(plan[1], 5u);  // grew by exactly the cap
}

// --- the live allocator against a real staged server -------------------------

class PoolControllerSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.0002);

    db::TableSchema schema;
    schema.name = "kv";
    schema.columns = {{"k", db::ColumnType::kInt},
                      {"v", db::ColumnType::kString}};
    schema.primary_key = 0;
    db_.create_table(schema);
    db_.table("kv").insert({db::Value(1), db::Value("one")});

    auto app = std::make_shared<Application>();
    auto loader = std::make_shared<tmpl::MemoryLoader>();
    loader->add("page.html", "<p>{{ value }}</p>");
    app->templates = loader;
    app->router.add("/q", [](HandlerContext& ctx) -> HandlerResult {
      auto rs = ctx.db->execute("SELECT v FROM kv WHERE k = ?", {db::Value(1)});
      tmpl::Dict data;
      data["value"] = tmpl::Value(rs.at(0, "v").as_string());
      return TemplateResponse{"page.html", std::move(data)};
    });
    app_ = app;

    config_.db_connections = 6;
    config_.header_threads = 2;
    config_.static_threads = 1;
    config_.general_threads = 3;
    config_.lengthy_threads = 2;
    config_.render_threads = 2;
    config_.treserve_min = 1;
    config_.controller = ControllerMode::kUtility;
    // Tick fast so a short test sees many allocation rounds.
    config_.controller_period_paper_s = 0.5;
    config_.utility.max_db_connections = 8;
  }

  void TearDown() override { TimeScale::set(0.005); }

  db::Database db_;
  std::shared_ptr<const Application> app_;
  ServerConfig config_;
};

TEST_F(PoolControllerSmokeTest, UtilityModeTicksResizesAndKeepsServing) {
  StagedServer server(config_, app_, db_);
  ASSERT_NE(server.pool_controller(), nullptr);

  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&] {
      InProcClient client(server);
      for (int i = 0; i < 40; ++i) {
        const std::string response =
            client.roundtrip("GET /q HTTP/1.1\r\nHost: x\r\n\r\n");
        EXPECT_EQ(response.find("HTTP/1.1 200"), 0u);
      }
    });
  }
  for (auto& t : clients) t.join();
  // Let a few more controller periods elapse after the burst.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const auto counters = server.pool_controller()->counters();
  EXPECT_GT(counters.ticks, 0u);
  // The fitted targets respect floors and budgets whatever the load did.
  EXPECT_GE(server.pool_controller()->general_target(),
            config_.utility.min_general_threads);
  EXPECT_LE(server.pool_controller()->db_target(),
            config_.utility.max_db_connections);
  // treserve is an output now, still clamped to the reserve band.
  EXPECT_GE(server.reserve().treserve(), server.reserve().min_reserve());
  EXPECT_LE(server.reserve().treserve(), server.reserve().max_reserve());
  // The controller publishes a pool-size time series for the stats dump.
  const auto names = server.stats().pool_size_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "general"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "db_connections"),
            names.end());

  // Still serving after all that resizing.
  InProcClient client(server);
  const std::string response =
      client.roundtrip("GET /q HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(response.find("HTTP/1.1 200"), 0u);
  server.shutdown();
}

TEST_F(PoolControllerSmokeTest, PaperModeConstructsNoController) {
  config_.controller = ControllerMode::kPaper;
  StagedServer server(config_, app_, db_);
  EXPECT_EQ(server.pool_controller(), nullptr);
  InProcClient client(server);
  EXPECT_EQ(client.roundtrip("GET /q HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("HTTP/1.1 200"),
            0u);
  server.shutdown();
}

}  // namespace
}  // namespace tempest::server
