// Seeded chaos soak (ctest label: soak): a bounded, randomized run of the
// TPC-W mix over real sockets with EVERY injection site armed at low
// probability — DB delays, transient errors, connection drops, handler and
// render faults, socket resets, short writes — all driven by one seed.
//
// The soak asserts survival invariants, not exact outcomes:
//   * every response that arrives is well-formed (a known status);
//   * the fault ledger is internally consistent;
//   * when the fault windows close, the server returns to full health
//     (requests succeed again) — no wedged pool, no leaked connection.
// Wall time is bounded (~5 s) so it can ride in the default ctest sweep;
// the nightly CI job selects it with `ctest -L soak`.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/fault.h"
#include "src/common/rng.h"
#include "src/server/staged_server.h"
#include "src/server/tcp.h"
#include "src/tpcw/handlers.h"
#include "src/tpcw/mix.h"
#include "src/tpcw/populate.h"

namespace tempest::server {
namespace {

constexpr std::uint64_t kSoakSeed = 20090629;
constexpr double kSoakWallSeconds = 4.0;

TEST(ChaosSoakTest, TpcwMixSurvivesEverySiteFaulting) {
  SCOPED_TRACE("chaos soak seed=" + std::to_string(kSoakSeed));
  TimeScale::set(0.0002);

  db::Database db;
  const auto pop = tpcw::populate_tpcw(db, tpcw::Scale::tiny(), kSoakSeed);
  auto app = tpcw::make_tpcw_application(
      tpcw::TpcwState::from_population(tpcw::Scale::tiny(), pop));

  // Fault windows close before the soak loop ends, so the tail of the run
  // doubles as the recovery check.
  const double window_end = paper_now() + (kSoakWallSeconds - 1.0) / 0.0002;
  auto plan = std::make_shared<FaultPlan>(kSoakSeed);
  const auto arm = [&](FaultSite site, double p, double delay = 0.0) {
    FaultRule rule;
    rule.enabled = true;
    rule.probability = p;
    rule.window_end_paper_s = window_end;
    rule.delay_paper_s = delay;
    plan->set(site, rule);
  };
  arm(FaultSite::kDbDelay, 0.02, /*delay=*/0.5);
  arm(FaultSite::kDbError, 0.02);
  arm(FaultSite::kDbDrop, 0.005);
  arm(FaultSite::kHandler, 0.01);
  arm(FaultSite::kRender, 0.01);
  arm(FaultSite::kSocketReset, 0.003);
  arm(FaultSite::kShortWrite, 0.001);

  ServerConfig config;
  config.charge_service_costs = false;
  config.db_connections = 8;
  config.header_threads = 2;
  config.static_threads = 2;
  config.general_threads = 6;
  config.lengthy_threads = 2;
  config.render_threads = 2;
  config.cache.enabled = true;
  config.request_deadline_paper_s = 10000.0;
  config.db_acquire_timeout_paper_s = 2000.0;
  config.fault_plan = plan;
  config.transport.fault_plan = plan;  // one seed chaos-tests the whole stack

  // The nightly CI soak re-runs this with TEMPEST_REACTOR_SHARDS=4 so every
  // shard soaks its own wheel, outbound queue, and derived fault plan.
  if (const char* shards = std::getenv("TEMPEST_REACTOR_SHARDS")) {
    config.transport.reactor_shards =
        static_cast<std::size_t>(std::strtoul(shards, nullptr, 10));
  }
  // ...and with TEMPEST_DB_LOCKING=snapshot so the epoch-read path (deferred
  // WriteBatch commits racing readers) soaks under every injection site.
  if (const char* locking = std::getenv("TEMPEST_DB_LOCKING")) {
    config.db_locking = db::locking_mode_from_string(locking);
  }
  // ...and with TEMPEST_CONTROLLER=utility so live pool/connection resizes
  // (grow-eager, shrink-by-drain) soak concurrently with every fault site.
  if (const char* controller = std::getenv("TEMPEST_CONTROLLER")) {
    config.controller = controller_mode_from_string(controller);
  }

  StagedServer server(config, app, db);
  TcpListener listener(server, 0, config.transport, &server.stats());

  std::atomic<std::uint64_t> well_formed{0};
  std::atomic<std::uint64_t> severed{0};
  std::atomic<std::uint64_t> malformed{0};
  const Stopwatch wall;

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(kSoakSeed + static_cast<std::uint64_t>(c));
      std::unique_ptr<TcpClient> conn;
      while (wall.elapsed_wall_seconds() < kSoakWallSeconds) {
        const std::string url = tpcw::build_url(
            tpcw::sample_page(rng), rng, tpcw::Scale::tiny(), 1 + c);
        try {
          if (!conn) {
            conn = std::make_unique<TcpClient>(listener.port(),
                                               /*io_timeout_ms=*/5000);
          }
          const std::string response =
              conn->request("GET " + url + " HTTP/1.1\r\nHost: x\r\n\r\n");
          if (response.empty()) {  // closed before any byte arrived
            severed.fetch_add(1);
            conn.reset();
            continue;
          }
          const bool known = response.find("HTTP/1.1 200") == 0 ||
                             response.find("HTTP/1.1 304") == 0 ||
                             response.find("HTTP/1.1 404") == 0 ||
                             response.find("HTTP/1.1 500") == 0 ||
                             response.find("HTTP/1.1 503") == 0;
          (known ? well_formed : malformed).fetch_add(1);
          if (!conn->connected()) conn.reset();
        } catch (const std::runtime_error&) {
          // Injected reset (or a response lost to one): sever and reconnect,
          // as a browser would.
          severed.fetch_add(1);
          conn.reset();
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // Survival: traffic flowed, and every completed response was well-formed.
  EXPECT_EQ(malformed.load(), 0u);
  EXPECT_GT(well_formed.load(), 100u) << "severed=" << severed.load();

  // The windows are closed: the server must be fully healthy again. Broken
  // connections may still be a controller-tick away from repair, so probe
  // with patience, but demand eventual clean 200s.
  int clean = 0;
  for (int attempt = 0; attempt < 200 && clean < 5; ++attempt) {
    const std::string response = tcp_roundtrip(
        listener.port(), "GET /home?c_id=1 HTTP/1.1\r\nHost: x\r\n\r\n");
    if (response.find("HTTP/1.1 200") == 0) {
      ++clean;
    } else {
      clean = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(clean, 5) << "server did not return to health after the windows";

  // The ledger balances.
  const auto s = server.stats().faults().snapshot();
  EXPECT_LE(s.db_retry_successes, s.db_retries);
  EXPECT_LE(s.connections_reopened, s.injected_at(FaultSite::kDbDrop));
  EXPECT_GT(s.injected_total(), 0u) << "soak injected nothing";

  listener.stop();
  server.shutdown();

  // Shutdown returned: no wedged worker. Every dynamic thread released its
  // lease, so the pool holds its full complement (broken ones included).
  EXPECT_EQ(server.connection_pool().available() +
                server.connection_pool().broken_count(),
            config.db_connections);
  TimeScale::set(0.005);
}

}  // namespace
}  // namespace tempest::server
