// Fragment cache: key derivation, TTL/LRU-at-byte-cap mechanics, dependency
// registration and table/row invalidation, the epoch fence against
// insert-after-invalidate, the DependencyTracker's broad-read/row-refinement
// semantics, cross-thread hammering, and the staged-server integration — a
// {% cache %} hit must splice the stored bytes without re-rendering, and a
// TPC-W write must kill exactly the fragments that depend on the written
// rows, never leaving a stale fragment servable.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/server/fragment_cache.h"
#include "src/server/staged_server.h"
#include "src/server/transport.h"
#include "src/tpcw/handlers.h"
#include "src/tpcw/populate.h"

namespace tempest::server {
namespace {

std::vector<TrackedDep> deps_of(FragmentCache& cache,
                                std::initializer_list<TrackedDep> deps) {
  std::vector<TrackedDep> out;
  for (TrackedDep d : deps) {
    d.epoch = cache.table_epoch(d.table);
    out.push_back(std::move(d));
  }
  return out;
}

// --- key derivation ----------------------------------------------------------

TEST(FragmentKeyTest, NameAndFingerprintFormTheKey) {
  const std::string key = FragmentCache::make_key("frag", 0xabcdef);
  EXPECT_EQ(key.rfind("frag#", 0), 0u);
  EXPECT_EQ(key, FragmentCache::make_key("frag", 0xabcdef));
  EXPECT_NE(key, FragmentCache::make_key("frag", 0xabcdf0));
  EXPECT_NE(key, FragmentCache::make_key("other", 0xabcdef));
}

// --- store mechanics ---------------------------------------------------------

TEST(FragmentCacheTest, InsertFindRoundTrip) {
  FragmentCacheConfig config;
  config.enabled = true;
  FragmentCounters counters;
  FragmentCache cache(config, &counters);

  cache.insert("f#1", "body", {}, 100.0, /*now=*/0.0);
  const auto hit = cache.find("f#1", 1.0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, "body");
  EXPECT_EQ(cache.find("f#2", 1.0), nullptr);
  EXPECT_EQ(counters.snapshot().inserts, 1u);
}

TEST(FragmentCacheTest, TtlExpiryObservedAtLookup) {
  FragmentCacheConfig config;
  FragmentCounters counters;
  FragmentCache cache(config, &counters);

  cache.insert("f#1", "body", {}, 10.0, 0.0);
  EXPECT_NE(cache.find("f#1", 5.0), nullptr);
  EXPECT_EQ(cache.find("f#1", 10.0), nullptr);  // deadline is exclusive
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(counters.snapshot().expirations, 1u);
}

TEST(FragmentCacheTest, DefaultTtlAppliesWhenMarkerHasNone) {
  FragmentCacheConfig config;
  config.default_ttl_paper_s = 2.0;
  FragmentCache cache(config);
  cache.insert("f#1", "body", {}, /*ttl=*/0.0, 0.0);
  EXPECT_NE(cache.find("f#1", 1.0), nullptr);
  EXPECT_EQ(cache.find("f#1", 3.0), nullptr);
}

TEST(FragmentCacheTest, LruEvictionAtByteCap) {
  FragmentCacheConfig config;
  config.shards = 1;  // deterministic: every key shares one LRU
  config.max_entries = 100;
  config.max_bytes = 3 * (3 + 100);  // three (3-byte key + 100-byte body)
  FragmentCounters counters;
  FragmentCache cache(config, &counters);

  const std::string body(100, 'x');
  cache.insert("f#a", body, {}, 1000.0, 0.0);
  cache.insert("f#b", body, {}, 1000.0, 0.0);
  cache.insert("f#c", body, {}, 1000.0, 0.0);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.bytes(), 3 * (3 + 100));

  // Touch f#a so f#b is least recently used, then overflow the byte cap.
  EXPECT_NE(cache.find("f#a", 1.0), nullptr);
  cache.insert("f#d", body, {}, 1000.0, 1.0);

  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.find("f#b", 2.0), nullptr);  // evicted
  EXPECT_NE(cache.find("f#a", 2.0), nullptr);
  EXPECT_NE(cache.find("f#c", 2.0), nullptr);
  EXPECT_NE(cache.find("f#d", 2.0), nullptr);
  EXPECT_EQ(counters.snapshot().evictions, 1u);
  EXPECT_LE(cache.bytes(), config.max_bytes);
}

TEST(FragmentCacheTest, EntryCapEvictsLeastRecentlyUsed) {
  FragmentCacheConfig config;
  config.shards = 1;
  config.max_entries = 2;
  FragmentCounters counters;
  FragmentCache cache(config, &counters);
  cache.insert("f#a", "1", {}, 1000.0, 0.0);
  cache.insert("f#b", "2", {}, 1000.0, 0.0);
  cache.insert("f#c", "3", {}, 1000.0, 0.0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find("f#a", 1.0), nullptr);
  EXPECT_EQ(counters.snapshot().evictions, 1u);
}

TEST(FragmentCacheTest, OversizedFragmentIsNotCached) {
  FragmentCacheConfig config;
  config.shards = 1;
  config.max_bytes = 64;
  FragmentCache cache(config);
  cache.insert("f#big", std::string(1000, 'x'), {}, 1000.0, 0.0);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(FragmentCacheTest, HitBodyOutlivesEviction) {
  // find() hands out shared ownership: invalidation mid-splice must not pull
  // the fragment bytes out from under a response still being written.
  FragmentCache cache(FragmentCacheConfig{});
  cache.insert("f#1", "still here",
               deps_of(cache, {{"item", "", 0}}), 1000.0, 0.0);
  const auto hit = cache.find("f#1", 1.0);
  ASSERT_NE(hit, nullptr);
  cache.invalidate_table("item");
  EXPECT_EQ(*hit, "still here");
  EXPECT_EQ(cache.size(), 0u);
}

// --- dependency invalidation -------------------------------------------------

TEST(FragmentCacheTest, TableInvalidationKillsBroadAndRowDependents) {
  FragmentCacheConfig config;
  FragmentCounters counters;
  FragmentCache cache(config, &counters);

  cache.insert("f#broad", "b", deps_of(cache, {{"item", "", 0}}), 1000.0, 0.0);
  cache.insert("f#row", "r", deps_of(cache, {{"item", "7", 0}}), 1000.0, 0.0);
  cache.insert("f#other", "o", deps_of(cache, {{"author", "", 0}}), 1000.0,
               0.0);

  EXPECT_EQ(cache.invalidate_table("item"), 2u);
  EXPECT_EQ(cache.find("f#broad", 1.0), nullptr);
  EXPECT_EQ(cache.find("f#row", 1.0), nullptr);
  EXPECT_NE(cache.find("f#other", 1.0), nullptr);
  EXPECT_EQ(counters.snapshot().invalidations, 2u);
  EXPECT_EQ(cache.invalidate_table("item"), 0u);
}

TEST(FragmentCacheTest, RowInvalidationIsRowPrecise) {
  FragmentCache cache(FragmentCacheConfig{});
  cache.insert("f#r7", "7", deps_of(cache, {{"item", "7", 0}}), 1000.0, 0.0);
  cache.insert("f#r8", "8", deps_of(cache, {{"item", "8", 0}}), 1000.0, 0.0);
  cache.insert("f#broad", "b", deps_of(cache, {{"item", "", 0}}), 1000.0, 0.0);

  // A write to row 7 kills that row's dependents and every table-broad
  // dependent (they may have displayed row 7), but spares row 8's.
  EXPECT_EQ(cache.invalidate_row("item", "7"), 2u);
  EXPECT_EQ(cache.find("f#r7", 1.0), nullptr);
  EXPECT_EQ(cache.find("f#broad", 1.0), nullptr);
  EXPECT_NE(cache.find("f#r8", 1.0), nullptr);
}

TEST(FragmentCacheTest, MultiDependencyFragmentDiesWithAnyOfThem) {
  FragmentCache cache(FragmentCacheConfig{});
  cache.insert("f#join", "j",
               deps_of(cache, {{"item", "", 0}, {"order_line", "", 0}}),
               1000.0, 0.0);
  EXPECT_EQ(cache.invalidate_table("order_line"), 1u);
  EXPECT_EQ(cache.find("f#join", 1.0), nullptr);
  // Its edges were unregistered with it: the other table sees no victim.
  EXPECT_EQ(cache.invalidate_table("item"), 0u);
}

TEST(FragmentCacheTest, EpochFenceRejectsStaleInsert) {
  // The insert-after-invalidate race: a renderer reads pre-write data, the
  // write invalidates, then the renderer tries to publish. The tracked epoch
  // no longer matches the table's and the insert must be refused.
  FragmentCacheConfig config;
  FragmentCounters counters;
  FragmentCache cache(config, &counters);

  const auto deps = deps_of(cache, {{"item", "7", 0}});  // epoch snapshot
  cache.invalidate_row("item", "7");                     // concurrent write
  cache.insert("f#stale", "pre-write render", deps, 1000.0, 0.0);

  EXPECT_EQ(cache.find("f#stale", 1.0), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(counters.snapshot().stale_rejects, 1u);
  EXPECT_EQ(counters.snapshot().inserts, 0u);

  // With a fresh epoch snapshot the same insert lands.
  cache.insert("f#fresh", "post-write render",
               deps_of(cache, {{"item", "7", 0}}), 1000.0, 0.0);
  EXPECT_NE(cache.find("f#fresh", 1.0), nullptr);
}

TEST(DependencyTrackerTest, RowRefinementReplacesBroadRead) {
  FragmentCache cache(FragmentCacheConfig{});
  DependencyTracker tracker(&cache);
  EXPECT_TRUE(tracker.armed());

  tracker.on_table_read("item");    // automatic, from the bound plan
  tracker.on_table_read("item");    // repeated reads collapse
  tracker.on_table_read("author");
  tracker.depend("item", "7");      // handler's row-precise refinement

  const auto deps = tracker.take();
  ASSERT_EQ(deps.size(), 2u);
  bool saw_item_row = false, saw_author_broad = false;
  for (const auto& d : deps) {
    if (d.table == "item") {
      EXPECT_EQ(d.key, "7");  // the broad edge was replaced
      saw_item_row = true;
    }
    if (d.table == "author") {
      EXPECT_TRUE(d.key.empty());
      saw_author_broad = true;
    }
  }
  EXPECT_TRUE(saw_item_row);
  EXPECT_TRUE(saw_author_broad);
}

TEST(DependencyTrackerTest, UnarmedTrackerRecordsNothing) {
  DependencyTracker tracker(nullptr);
  EXPECT_FALSE(tracker.armed());
  tracker.on_table_read("item");
  tracker.depend("item", "7");
  EXPECT_TRUE(tracker.take().empty());
}

// --- cross-thread hammer (exercised under TSan in run_sanitized.sh) ---------

TEST(FragmentCacheTest, ConcurrentFindInsertInvalidateHammer) {
  FragmentCacheConfig config;
  config.shards = 4;
  config.max_entries = 64;
  config.max_bytes = 1 << 16;
  FragmentCounters counters;
  FragmentCache cache(config, &counters);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        const int n = (t * 7 + i) % 16;
        const std::string key = "f#" + std::to_string(n);
        if (auto hit = cache.find(key, 1.0)) {
          hits.fetch_add(1, std::memory_order_relaxed);
          EXPECT_FALSE(hit->empty());
        } else {
          const std::string row = std::to_string(n % 4);
          cache.insert(key, "body " + key,
                       deps_of(cache, {{"item", row, 0}}), 1000.0, 1.0);
        }
      }
    });
  }
  threads.emplace_back([&] {
    while (!stop.load()) {
      cache.invalidate_row("item", "1");
      cache.invalidate_table("order_line");
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < 4; ++t) threads[t].join();
  stop.store(true);
  threads.back().join();

  EXPECT_GT(hits.load(), 0u);
  EXPECT_LE(cache.size(), 64u);
}

// --- staged-server integration ----------------------------------------------

class FragmentServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeScale::set(0.0002);

    auto app = std::make_shared<Application>();
    auto loader = std::make_shared<tmpl::MemoryLoader>();
    // A personalized shell around a cacheable core: `n` re-renders per
    // request, the marked sub-tree should render once per distinct `id`.
    loader->add("page.html",
                "<p>n={{ n }}</p>"
                "{% cache core ttl=100000 id %}core {{ n }} for {{ id }}"
                "{% endcache %}");
    app->templates = loader;

    app->router.add("/page", [this](HandlerContext& ctx) -> HandlerResult {
      ctx.depend("widget", ctx.param("id", "1"));
      tmpl::Dict data;
      data["n"] = tmpl::Value(handler_calls_.fetch_add(1) + 1);
      data["id"] = tmpl::Value(ctx.param("id", "1"));
      return TemplateResponse{"page.html", std::move(data)};
    });
    app->router.add("/write_row", [](HandlerContext& ctx) -> HandlerResult {
      ctx.invalidate_row("widget", ctx.param("id", "1"));
      return StringResponse{"written"};
    });
    app->router.add("/write_table", [](HandlerContext& ctx) -> HandlerResult {
      ctx.invalidate_table("widget");
      return StringResponse{"written"};
    });
    app_ = app;

    config_.db_connections = 6;
    config_.header_threads = 2;
    config_.static_threads = 2;
    config_.general_threads = 4;
    config_.lengthy_threads = 1;
    config_.render_threads = 2;
    config_.treserve_min = 1;
    config_.charge_service_costs = false;
    config_.fragment_cache.enabled = true;
  }

  void TearDown() override { TimeScale::set(0.005); }

  static std::string get(WebServer& server, const std::string& url) {
    InProcClient client(server);
    return client.roundtrip("GET " + url + " HTTP/1.1\r\nHost: x\r\n\r\n");
  }

  db::Database db_;
  std::shared_ptr<const Application> app_;
  ServerConfig config_;
  std::atomic<int> handler_calls_{0};
};

TEST_F(FragmentServerTest, HitSplicesStoredBytesWithoutReRender) {
  StagedServer server(config_, app_, db_);
  const std::string first = get(server, "/page?id=1");
  EXPECT_NE(first.find("n=1"), std::string::npos);
  EXPECT_NE(first.find("core 1 for 1"), std::string::npos);

  const std::string second = get(server, "/page?id=1");
  // The shell re-rendered (n=2) but the fragment is the first render's bytes.
  EXPECT_NE(second.find("n=2"), std::string::npos);
  EXPECT_NE(second.find("core 1 for 1"), std::string::npos);
  EXPECT_EQ(second.find("core 2"), std::string::npos);

  const auto frags = server.stats().fragments().snapshot();
  EXPECT_EQ(frags.hits_total(), 1u);
  EXPECT_EQ(frags.misses, 1u);
  EXPECT_EQ(frags.inserts, 1u);
  EXPECT_EQ(frags.splices, 1u);
  EXPECT_GT(frags.bytes, 0u);
  EXPECT_EQ(frags.budget_bytes, config_.fragment_cache.max_bytes);
  server.shutdown();
}

TEST_F(FragmentServerTest, DistinctInputsAreDistinctFragments) {
  StagedServer server(config_, app_, db_);
  get(server, "/page?id=1");
  get(server, "/page?id=2");
  EXPECT_EQ(server.stats().fragments().snapshot().misses, 2u);
  get(server, "/page?id=1");
  get(server, "/page?id=2");
  EXPECT_EQ(server.stats().fragments().snapshot().hits_total(), 2u);
  server.shutdown();
}

TEST_F(FragmentServerTest, RowWriteInvalidatesOnlyItsRowsFragments) {
  StagedServer server(config_, app_, db_);
  get(server, "/page?id=1");
  get(server, "/page?id=2");

  get(server, "/write_row?id=1");
  EXPECT_EQ(server.stats().fragments().snapshot().invalidations, 1u);

  // id=1 re-renders against fresh state; id=2's fragment survived the write.
  const std::string one = get(server, "/page?id=1");
  EXPECT_EQ(one.find("core 1 for 1"), std::string::npos);  // no stale serve
  const auto frags = server.stats().fragments().snapshot();
  EXPECT_EQ(frags.misses, 3u);
  get(server, "/page?id=2");
  EXPECT_EQ(server.stats().fragments().snapshot().hits_total(), 1u);
  server.shutdown();
}

TEST_F(FragmentServerTest, TableWriteInvalidatesEveryDependent) {
  StagedServer server(config_, app_, db_);
  get(server, "/page?id=1");
  get(server, "/page?id=2");
  get(server, "/write_table");
  EXPECT_EQ(server.stats().fragments().snapshot().invalidations, 2u);
  get(server, "/page?id=1");
  get(server, "/page?id=2");
  const auto frags = server.stats().fragments().snapshot();
  EXPECT_EQ(frags.hits_total(), 0u);
  EXPECT_EQ(frags.misses, 4u);
  server.shutdown();
}

TEST_F(FragmentServerTest, DisabledFragmentCacheRendersInline) {
  config_.fragment_cache.enabled = false;
  StagedServer server(config_, app_, db_);
  const std::string first = get(server, "/page?id=1");
  const std::string second = get(server, "/page?id=1");
  EXPECT_NE(first.find("core 1 for 1"), std::string::npos);
  EXPECT_NE(second.find("core 2 for 1"), std::string::npos);  // re-rendered
  const auto frags = server.stats().fragments().snapshot();
  EXPECT_EQ(frags.lookups(), 0u);
  server.shutdown();
}

TEST_F(FragmentServerTest, StatsDumpsCarryFragmentCounters) {
  StagedServer server(config_, app_, db_);
  get(server, "/page?id=1");
  get(server, "/page?id=1");
  const std::string text = server.stats().text();
  EXPECT_NE(text.find("fragments"), std::string::npos);
  const std::string json = server.stats().json();
  EXPECT_NE(json.find("\"fragments\""), std::string::npos);
  EXPECT_NE(json.find("\"splices\""), std::string::npos);
  server.shutdown();
}

// --- TPC-W end-to-end: dependency writes leave no stale fragment ------------

class TpcwFragmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Slow paper time (1 paper s = 50 ms wall) so the templates' ttl=30..60
    // markers cannot expire mid-test; service costs are not charged, so
    // nothing sleeps.
    TimeScale::set(0.05);
    const auto scale = tpcw::Scale::tiny();
    const auto pop = tpcw::populate_tpcw(db_, scale);
    app_ = tpcw::make_tpcw_application(
        tpcw::TpcwState::from_population(scale, pop));

    config_.db_connections = 6;
    config_.header_threads = 2;
    config_.static_threads = 2;
    config_.general_threads = 4;
    config_.lengthy_threads = 1;
    config_.render_threads = 2;
    config_.treserve_min = 1;
    config_.charge_service_costs = false;
    config_.fragment_cache.enabled = true;
  }

  void TearDown() override { TimeScale::set(0.005); }

  static std::string get(WebServer& server, const std::string& url) {
    InProcClient client(server);
    return client.roundtrip("GET " + url + " HTTP/1.1\r\nHost: x\r\n\r\n");
  }

  db::Database db_;
  std::shared_ptr<const Application> app_;
  ServerConfig config_;
};

TEST_F(TpcwFragmentTest, PersonalizedPagesShareTheCatalogFragment) {
  StagedServer server(config_, app_, db_);
  // Different c_id = different URL: the response cache could never share
  // these, the subject-keyed fragment does.
  get(server, "/best_sellers?subject=ARTS&c_id=1");
  const std::string second = get(server, "/best_sellers?subject=ARTS&c_id=2");
  EXPECT_EQ(second.find("HTTP/1.1 200"), 0u);
  const auto frags = server.stats().fragments().snapshot();
  EXPECT_GE(frags.hits_total(), 1u);
  EXPECT_GE(frags.splices, 1u);
  server.shutdown();
}

TEST_F(TpcwFragmentTest, BuyConfirmInvalidatesTheBestSellerFragment) {
  StagedServer server(config_, app_, db_);
  get(server, "/best_sellers?subject=ARTS&c_id=1");
  get(server, "/best_sellers?subject=ARTS&c_id=2");
  EXPECT_GE(server.stats().fragments().snapshot().hits_total(), 1u);

  // The purchase writes order_line, which the ranking fragment read.
  get(server, "/buy_confirm?c_id=1");
  EXPECT_GE(server.stats().fragments().snapshot().invalidations, 1u);

  const auto before = server.stats().fragments().snapshot();
  get(server, "/best_sellers?subject=ARTS&c_id=3");
  const auto after = server.stats().fragments().snapshot();
  EXPECT_GE(after.misses, before.misses + 1);  // re-rendered, not stale
  server.shutdown();
}

TEST_F(TpcwFragmentTest, AdminUpdateLeavesNoStaleProductFragment) {
  StagedServer server(config_, app_, db_);
  get(server, "/product_detail?i_id=3&c_id=1");
  const std::string warm = get(server, "/product_detail?i_id=3&c_id=2");
  EXPECT_GE(server.stats().fragments().snapshot().hits_total(), 1u);
  EXPECT_EQ(warm.find("/img/fragtest.gif"), std::string::npos);

  // The admin update rewrites item row 3's image; the row-keyed fragment
  // must die and the next render must show the new image.
  get(server, "/admin_response?i_id=3&image=/img/fragtest.gif");
  const std::string fresh = get(server, "/product_detail?i_id=3&c_id=1");
  EXPECT_NE(fresh.find("/img/fragtest.gif"), std::string::npos)
      << "stale fragment served after a dependency write";
  server.shutdown();
}

TEST_F(TpcwFragmentTest, RowPrecisionSparesOtherProductsFragments) {
  StagedServer server(config_, app_, db_);
  get(server, "/product_detail?i_id=4&c_id=1");
  get(server, "/product_detail?i_id=4&c_id=2");
  const auto warm = server.stats().fragments().snapshot();
  EXPECT_GE(warm.hits_total(), 1u);

  // Write row 3: product 4's row-keyed fragment must survive.
  get(server, "/admin_response?i_id=3&image=/img/other.gif");
  const auto before = server.stats().fragments().snapshot();
  get(server, "/product_detail?i_id=4&c_id=3");
  const auto after = server.stats().fragments().snapshot();
  EXPECT_GE(after.hits_total(), before.hits_total() + 1);
  server.shutdown();
}

}  // namespace
}  // namespace tempest::server
