// The TPC-W online bookstore served over real TCP sockets.
//
//   ./build/examples/bookstore [--port N] [--serve] [--shards N]
//                              [--controller paper|utility]
//
// Without --serve, it starts the staged server on a loopback port, walks a
// shopper's session over real sockets (home -> search -> product -> cart ->
// checkout), prints what happened, and exits. With --serve it keeps running
// so you can point curl or a browser at it. --shards N runs the transport as
// N reactor shards (0 = one per core); the exit dump then shows the
// per-shard counter breakdown.
#include <cstdio>
#include <thread>

#include "src/common/config.h"
#include "src/common/clock.h"
#include "src/common/fault.h"
#include "src/db/database.h"
#include "src/server/staged_server.h"
#include "src/server/tcp.h"
#include "src/tpcw/handlers.h"
#include "src/tpcw/populate.h"

using namespace tempest;

namespace {

std::string status_line(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

std::size_t body_size(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? 0 : response.size() - pos - 4;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = Options::parse(argc, argv);
  TimeScale::set(options.get_double("scale", 0.002));

  std::printf("populating the TPC-W bookstore database...\n");
  db::Database db;
  const auto scale = tpcw::Scale::bench();
  const auto pop = tpcw::populate_tpcw(db, scale);
  std::printf("  %lld books, %lld customers, %lld orders, %lld order lines\n",
              static_cast<long long>(pop.items),
              static_cast<long long>(pop.customers),
              static_cast<long long>(pop.orders),
              static_cast<long long>(pop.order_lines));

  auto app = tpcw::make_tpcw_application(
      tpcw::TpcwState::from_population(scale, pop));

  server::ServerConfig config;
  config.cache.enabled = true;  // catalog routes opt in; X-Cache shows hit/miss
  // Fragment cache: {% cache %}-marked catalog subtrees are shared across
  // personalized URLs and invalidated by buy/admin writes (DESIGN.md §16).
  config.fragment_cache.enabled = true;
  if (auto plan = FaultPlan::from_env()) {
    std::printf("TEMPEST_FAULT_PLAN armed (seed=%llu)\n",
                static_cast<unsigned long long>(plan->seed()));
    config.fault_plan = plan;
    config.transport.fault_plan = plan;
  }
  config.transport.reactor_shards =
      static_cast<std::size_t>(options.get_int("shards", 1));
  // --controller=paper|utility: the Table 1-2 treserve heuristic, or the
  // allocator that re-fits every pool from measured pressure (DESIGN.md §15).
  config.controller = server::controller_mode_from_string(
      options.get_string("controller", "paper"));
  server::StagedServer web(config, app, db);
  server::TcpListener listener(
      web, static_cast<std::uint16_t>(options.get_int("port", 0)),
      config.transport, &web.stats());
  std::printf(
      "bookstore listening on http://127.0.0.1:%u/home?c_id=1 "
      "(%zu reactor shard%s%s)\n\n",
      listener.port(), listener.shard_count(),
      listener.shard_count() == 1 ? "" : "s",
      listener.reuse_port_active() ? ", SO_REUSEPORT" : "");

  if (options.get_bool("serve", false)) {
    std::printf("serving until interrupted (Ctrl-C to stop)...\n");
    while (true) std::this_thread::sleep_for(std::chrono::seconds(3600));
  }

  const char* session[] = {
      "/home?c_id=42",
      "/search_request?c_id=42",
      "/execute_search?c_id=42&type=title&term=river",
      "/product_detail?c_id=42&i_id=1017",
      "/shopping_cart?c_id=42&i_id=1017&qty=2",
      "/buy_request?c_id=42",
      "/buy_confirm?c_id=42",
      "/order_display?c_id=42",
      "/img/banner.gif",
  };
  // The whole session rides one keep-alive connection, like a browser would.
  server::TcpClient shopper(listener.port());
  for (const char* url : session) {
    const Stopwatch watch;
    const std::string response = shopper.request(
        "GET " + std::string(url) + " HTTP/1.1\r\nHost: bookstore\r\n\r\n");
    std::printf("GET %-55s -> %s  (%zu bytes, %.1f paper-ms)\n", url,
                status_line(response).c_str(), body_size(response),
                watch.elapsed_paper() * 1000);
  }

  std::printf("\norders on file after checkout: %zu (started with %lld)\n",
              db.table("orders").row_count(), static_cast<long long>(pop.orders));
  std::printf("%s", listener.counters().text().c_str());
  listener.stop();
  web.shutdown();
  return 0;
}
