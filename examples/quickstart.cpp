// Quickstart: a template-based web application served by the staged
// (multiple-thread-pool) server.
//
//   cmake --build build && ./build/examples/quickstart
//
// The handler follows the paper's programming model exactly (Section 3.1):
// it generates data through the worker thread's database connection, then
// returns the *unrendered* template name plus the rendering data — the C++
// analogue of `return ("tmpl.html", data)`. The server parses headers,
// queries, and renders each in a different thread pool.
#include <cstdio>

#include "src/common/clock.h"
#include "src/db/database.h"
#include "src/server/staged_server.h"
#include "src/server/transport.h"
#include "src/template/loader.h"

using namespace tempest;

int main() {
  TimeScale::set(0.001);  // run simulated service times 1000x faster

  // 1. A database with one table.
  db::Database db;
  db::TableSchema schema;
  schema.name = "page";
  schema.columns = {{"pageid", db::ColumnType::kInt},
                    {"title", db::ColumnType::kString},
                    {"heading", db::ColumnType::kString}};
  schema.primary_key = 0;
  db.create_table(schema);
  db.table("page").insert(
      {db::Value(1), db::Value("Welcome"), db::Value("Hello from tempest")});

  // 2. An application: routes + templates (+ optional static files).
  auto app = std::make_shared<server::Application>();
  auto templates = std::make_shared<tmpl::MemoryLoader>();
  templates->add("tmpl.html",
                 "<html><head><title>{{ title }}</title></head>\n"
                 "<body><h2 align=\"center\">{{ heading }}</h2><ul>\n"
                 "{% for item in listitems %}<li>{{ item }}</li>\n"
                 "{% endfor %}</ul></body></html>\n");
  app->templates = templates;

  app->router.add("/example", [](server::HandlerContext& ctx)
                                  -> server::HandlerResult {
    // Data generation on a dynamic-pool thread holding a DB connection...
    auto rs = ctx.db->execute("SELECT title, heading FROM page WHERE pageid = ?",
                              {db::Value(ctx.param_int("pageid", 1))});
    tmpl::Dict data;
    if (!rs.empty()) {
      data["title"] = tmpl::Value(rs.at(0, "title").as_string());
      data["heading"] = tmpl::Value(rs.at(0, "heading").as_string());
    }
    data["listitems"] = tmpl::Value(tmpl::List{
        tmpl::Value("rendering happens on the render pool"),
        tmpl::Value("this thread's DB connection is already free"),
        tmpl::Value("Content-Length is set from the rendered size")});
    // ...and the paper's modified return convention: template name + data.
    return server::TemplateResponse{"tmpl.html", std::move(data)};
  });

  app->static_store.add("/logo.txt", "tempest quickstart", "text/plain");

  // 3. The staged server: listener + five pools.
  server::ServerConfig config;
  config.db_connections = 8;
  config.baseline_threads = 8;
  config.header_threads = 2;
  config.static_threads = 2;
  config.general_threads = 6;
  config.lengthy_threads = 2;
  config.render_threads = 2;
  server::StagedServer web(config, app, db);

  // 4. Issue requests through the in-process transport.
  server::InProcClient client(web);
  std::printf("== GET /example?pageid=1 ==\n%s\n",
              client.roundtrip("GET /example?pageid=1 HTTP/1.1\r\n"
                               "Host: quickstart\r\n\r\n")
                  .c_str());
  std::printf("== GET /logo.txt (static pool) ==\n%s\n",
              client.roundtrip("GET /logo.txt HTTP/1.1\r\nHost: q\r\n\r\n")
                  .c_str());

  std::printf("pools: general spare=%lld treserve=%lld\n",
              static_cast<long long>(web.general_spare()),
              static_cast<long long>(web.reserve().treserve()));
  web.shutdown();
  return 0;
}
