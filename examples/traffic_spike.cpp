// Demonstrates the adaptive treserve controller (Section 3.3) reacting to a
// traffic spike: a steady trickle of quick requests, then a burst of lengthy
// ones. Watch tspare fall, treserve chase it up (protecting quick requests),
// and then decay once the spike passes — the Table 2 dynamics live.
//
// --controller=utility swaps in the allocator that re-fits every pool
// (DESIGN.md §15); treserve then follows measured quick demand instead of
// chasing tspare dips.
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/config.h"
#include "src/db/database.h"
#include "src/server/staged_server.h"
#include "src/server/transport.h"
#include "src/template/loader.h"

using namespace tempest;

int main(int argc, char** argv) {
  const auto options = Options::parse(argc, argv);
  TimeScale::set(0.01);  // 1 paper-second = 10 ms

  db::Database db;
  db::TableSchema schema;
  schema.name = "data";
  schema.columns = {{"id", db::ColumnType::kInt}, {"v", db::ColumnType::kInt}};
  schema.primary_key = 0;
  db.create_table(schema);
  for (int i = 1; i <= 20000; ++i) {
    db.table("data").insert({db::Value(i), db::Value(i % 97)});
  }

  auto app = std::make_shared<server::Application>();
  auto templates = std::make_shared<tmpl::MemoryLoader>();
  templates->add("n.html", "<p>{{ n }}</p>");
  app->templates = templates;
  // Quick: indexed point lookup. Lengthy: full scan (several paper-seconds).
  app->router.add("/quick", [](server::HandlerContext& ctx)
                                -> server::HandlerResult {
    auto rs = ctx.db->execute("SELECT v FROM data WHERE id = ?", {db::Value(7)});
    return server::TemplateResponse{"n.html",
                                    {{"n", tmpl::Value(rs.at(0, "v").as_int())}}};
  });
  app->router.add("/lengthy", [](server::HandlerContext& ctx)
                                  -> server::HandlerResult {
    auto rs = ctx.db->execute("SELECT COUNT(*) AS n FROM data WHERE v = 13");
    return server::TemplateResponse{"n.html",
                                    {{"n", tmpl::Value(rs.at(0, "n").as_int())}}};
  });

  server::ServerConfig config;
  config.db_connections = 20;
  config.baseline_threads = 20;
  config.general_threads = 16;
  config.lengthy_threads = 4;
  config.header_threads = 2;
  config.static_threads = 2;
  config.render_threads = 4;
  config.treserve_min = 4;
  config.controller = server::controller_mode_from_string(
      options.get_string("controller", "paper"));
  server::StagedServer web(config, app, db);
  server::InProcClient client(web);

  // Warm the classifier so /lengthy is known lengthy.
  client.roundtrip("GET /lengthy HTTP/1.1\r\nHost: x\r\n\r\n");

  std::printf("phase 1: steady quick traffic (5 paper-seconds)...\n");
  std::printf("%6s %8s %10s %14s\n", "t(s)", "tspare", "treserve",
              "quick-ms");
  std::atomic<bool> stop{false};
  std::thread quick_traffic([&] {
    server::InProcClient c(web);
    while (!stop.load()) {
      c.roundtrip("GET /quick HTTP/1.1\r\nHost: x\r\n\r\n");
      paper_sleep_for(0.05);
    }
  });

  const double epoch = paper_now();
  auto sample = [&](double until_paper_s) {
    while (paper_now() - epoch < until_paper_s) {
      const Stopwatch probe;
      client.roundtrip("GET /quick HTTP/1.1\r\nHost: x\r\n\r\n");
      std::printf("%6.1f %8lld %10lld %14.1f\n", paper_now() - epoch,
                  static_cast<long long>(web.general_spare()),
                  static_cast<long long>(web.reserve().treserve()),
                  probe.elapsed_paper() * 1000);
      paper_sleep_for(1.0);
    }
  };
  sample(5);

  std::printf("phase 2: SPIKE — 60 lengthy requests arrive at once...\n");
  std::vector<std::future<std::string>> spike;
  for (int i = 0; i < 60; ++i) {
    spike.push_back(client.send("GET /lengthy HTTP/1.1\r\nHost: x\r\n\r\n"));
  }
  sample(20);

  std::printf("phase 3: spike served, reserve decays...\n");
  for (auto& f : spike) f.get();
  sample(32);

  stop.store(true);
  quick_traffic.join();
  std::printf(
      "\nNote how treserve rose while the spike drained (lengthy requests\n"
      "held general-pool threads) and decayed by half-differences afterward\n"
      "— and quick-request latency returned to its baseline within a couple\n"
      "of ticks, because treserve kept threads reserved for quick requests.\n");
  web.shutdown();
  return 0;
}
