// A tour of the Django-style template engine: variables, filters, control
// flow, inheritance, and autoescaping — the presentation layer the paper's
// scheduling method moves onto its own thread pool.
#include <cstdio>

#include "src/template/loader.h"
#include "src/template/template.h"

using namespace tempest::tmpl;

namespace {

void show(const char* label, const std::string& output) {
  std::printf("--- %s ---\n%s\n\n", label, output.c_str());
}

}  // namespace

int main() {
  // Variables, dotted paths, and filters.
  {
    auto tmpl = Template::compile(
        "Hello {{ user.name|title }}! You have {{ inbox|length }} message"
        "{{ inbox|length|pluralize }} ({{ inbox|join:', ' }}).");
    Dict data;
    data["user"] = Value(Dict{{"name", Value("ada lovelace")}});
    data["inbox"] =
        Value(List{Value("invoice"), Value("newsletter"), Value("alert")});
    show("variables and filters", tmpl->render(data));
  }

  // Control flow: if/elif/else, for with forloop metadata and empty clause.
  {
    auto tmpl = Template::compile(
        "{% for book in books %}"
        "{{ forloop.counter }}. {{ book.title }} "
        "{% if book.price > 20 %}(premium){% elif book.price > 10 %}"
        "(standard){% else %}(budget){% endif %}\n"
        "{% empty %}The shelf is empty.\n{% endfor %}");
    Dict data;
    List books;
    books.push_back(Value(Dict{{"title", Value("Crime and Punishment")},
                               {"price", Value(24.0)}}));
    books.push_back(
        Value(Dict{{"title", Value("War and Peace")}, {"price", Value(12.0)}}));
    books.push_back(
        Value(Dict{{"title", Value("Poems")}, {"price", Value(5.0)}}));
    data["books"] = Value(std::move(books));
    show("control flow", tmpl->render(data));
    show("empty clause", tmpl->render({{"books", Value(List{})}}));
  }

  // Template inheritance: base layout + child page, as the TPC-W pages use.
  {
    MemoryLoader loader;
    loader.add("base.html",
               "<html><title>{% block title %}Site{% endblock %}</title>\n"
               "<body>{% block content %}no content{% endblock %}</body>"
               "</html>");
    loader.add("child.html",
               "{% extends 'base.html' %}"
               "{% block title %}{{ heading }}{% endblock %}"
               "{% block content %}<h1>{{ heading }}</h1>"
               "{% include 'footer.html' %}{% endblock %}");
    loader.add("footer.html", "<hr>rendered {{ when }}");
    Dict data;
    data["heading"] = Value("Inheritance");
    data["when"] = Value("at request time");
    show("inheritance + include",
         loader.load("child.html")->render(data, &loader));
  }

  // Autoescaping: untrusted data is escaped unless marked safe.
  {
    auto tmpl = Template::compile(
        "escaped: {{ payload }}\nsafe:    {{ payload|safe }}");
    show("autoescape",
         tmpl->render({{"payload", Value("<script>alert(1)</script>")}}));
  }

  // The paper's Figure 3 template, verbatim.
  {
    auto tmpl = Template::compile(
        "<html>\n<head> <title> {{ title }} </title> </head>\n<body>\n"
        "<h2 align=\"center\"> {{ heading }} </h2>\n<ul>\n"
        "{% for item in listitems %}\n<li> {{ item }} </li>\n{% endfor %}\n"
        "</ul>\n</body>\n</html>");
    Dict data;
    data["title"] = Value("Figure 3");
    data["heading"] = Value("Presentation template");
    data["listitems"] = Value(List{Value("alpha"), Value("beta")});
    show("the paper's Figure 3", tmpl->render(data));
  }
  return 0;
}
